"""Tests for the shared ThermalEngine facade and its instrumentation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import EngineStats, ThermalEngine, as_platform
from repro.schedule.builders import constant_schedule, two_mode_schedule
from repro.thermal.batch import stepup_peak_temperature_batch
from repro.thermal.peak import peak_temperature, stepup_peak_temperature


@pytest.fixture()
def engine(platform3) -> ThermalEngine:
    return ThermalEngine(platform3)


def _osc_schedule(platform, ratio=0.5, cycle=0.01):
    lo = np.full(platform.n_cores, platform.ladder.v_min)
    hi = np.full(platform.n_cores, platform.ladder.v_max)
    return two_mode_schedule(lo, hi, np.full(platform.n_cores, ratio), cycle)


class TestEnsure:
    def test_wraps_platform(self, platform3):
        engine = ThermalEngine.ensure(platform3)
        assert isinstance(engine, ThermalEngine)
        assert engine.platform is platform3

    def test_idempotent(self, engine):
        assert ThermalEngine.ensure(engine) is engine

    def test_as_platform(self, platform3, engine):
        assert as_platform(platform3) is platform3
        assert as_platform(engine) is engine.platform

    def test_delegation(self, platform3, engine):
        assert engine.n_cores == platform3.n_cores
        assert engine.theta_max == platform3.theta_max
        assert engine.ladder is platform3.ladder
        assert engine.model is platform3.model


class TestPeakParity:
    """Engine peak calls must match the raw kernels exactly."""

    def test_stepup_peak(self, platform3, engine):
        sched = _osc_schedule(platform3)
        expected = stepup_peak_temperature(platform3.model, sched, check=False)
        got = engine.stepup_peak(sched)
        assert got.value == expected.value

    def test_general_peak(self, platform3, engine):
        sched = _osc_schedule(platform3)
        expected = peak_temperature(platform3.model, sched)
        got = engine.general_peak(sched)
        assert got.value == expected.value

    def test_stepup_batch(self, platform3, engine):
        scheds = [_osc_schedule(platform3, r) for r in (0.25, 0.5, 0.75)]
        expected = stepup_peak_temperature_batch(
            platform3.model, scheds, check=False
        )
        got = engine.stepup_peak_batch(scheds)
        assert [g.value for g in got] == [e.value for e in expected]

    def test_resolve_defaults_are_stepup(self, platform3, engine):
        sched = _osc_schedule(platform3)
        peak_fn, peak_batch_fn = engine.resolve_peak_fns()
        expected = stepup_peak_temperature(platform3.model, sched, check=False)
        assert peak_fn(sched).value == expected.value
        # The batched kernel reorders the floating-point reduction.
        assert peak_batch_fn([sched])[0].value == pytest.approx(
            expected.value, rel=1e-12
        )

    def test_resolve_general(self, platform3, engine):
        # A shifted/arbitrary schedule only the general engine prices.
        sched = constant_schedule(
            np.full(platform3.n_cores, platform3.ladder.v_min), period=0.02
        )
        peak_fn, _ = engine.resolve_peak_fns(general=True)
        expected = peak_temperature(platform3.model, sched)
        assert peak_fn(sched).value == expected.value

    def test_resolve_scalar_only_loops(self, engine, platform3):
        calls = []

        def scalar(sched):
            calls.append(sched)
            return stepup_peak_temperature(platform3.model, sched, check=False)

        peak_fn, peak_batch_fn = engine.resolve_peak_fns(peak_fn=scalar)
        scheds = [_osc_schedule(platform3, r) for r in (0.3, 0.6)]
        results = peak_batch_fn(scheds)
        assert len(results) == 2 and len(calls) == 2

    def test_resolve_batch_only_derives_scalar(self, engine, platform3):
        def batch(scheds):
            return stepup_peak_temperature_batch(
                platform3.model, scheds, check=False
            )

        peak_fn, _ = engine.resolve_peak_fns(peak_batch_fn=batch)
        sched = _osc_schedule(platform3)
        expected = stepup_peak_temperature(platform3.model, sched, check=False)
        assert peak_fn(sched).value == pytest.approx(expected.value, rel=1e-12)


class TestCounters:
    def test_steady_state_counts_and_cache_hits(self, platform3, engine):
        mark = engine.checkpoint()
        v = np.full(platform3.n_cores, platform3.ladder.v_max - 0.0012345)
        engine.steady_state_cores(v)  # unlikely to be cached yet
        engine.steady_state_cores(v)  # guaranteed hit
        stats = engine.stats_since(mark)
        assert stats.steady_state_solves + stats.steady_state_cache_hits == 2
        assert stats.steady_state_cache_hits >= 1

    def test_batch_rows_counted(self, platform3, engine):
        mark = engine.checkpoint()
        volts = np.full((7, platform3.n_cores), platform3.ladder.v_min)
        engine.steady_state_batch(volts)
        assert engine.stats_since(mark).steady_state_batch_rows == 7

    def test_peak_and_batch_counters(self, platform3, engine):
        mark = engine.checkpoint()
        sched = _osc_schedule(platform3)
        engine.stepup_peak(sched)
        engine.stepup_peak_batch([sched] * 5)
        stats = engine.stats_since(mark)
        assert stats.peak_evals == 1
        assert stats.batch_calls == 1
        assert stats.batch_candidates == 5
        assert stats.max_batch == 5
        assert stats.mean_batch == 5.0

    def test_expm_applications_counted(self, platform3, engine):
        mark = engine.checkpoint()
        engine.stepup_peak(_osc_schedule(platform3))
        assert engine.stats_since(mark).expm_applications > 0

    def test_phase_timing(self, engine):
        mark = engine.checkpoint()
        with engine.phase("demo"):
            pass
        with engine.phase("demo"):
            pass
        stats = engine.stats_since(mark)
        assert "demo" in stats.phase_seconds
        assert stats.phase_seconds["demo"] >= 0.0

    def test_reset_stats(self, platform3, engine):
        engine.stepup_peak(_osc_schedule(platform3))
        engine.reset_stats()
        stats = engine.stats()
        assert stats.peak_evals == 0
        assert stats.phase_seconds == {}

    def test_checkpoint_isolation(self, platform3, engine):
        """Two interleaved checkpoints attribute work independently."""
        sched = _osc_schedule(platform3)
        mark_a = engine.checkpoint()
        engine.stepup_peak(sched)
        mark_b = engine.checkpoint()
        engine.stepup_peak(sched)
        assert engine.stats_since(mark_a).peak_evals == 2
        assert engine.stats_since(mark_b).peak_evals == 1


class TestEngineStats:
    def test_cache_hit_rate_empty(self):
        assert EngineStats().cache_hit_rate == 0.0

    def test_cache_hit_rate(self):
        stats = EngineStats(steady_state_solves=1, steady_state_cache_hits=3)
        assert stats.cache_hit_rate == 0.75

    def test_summary_line_and_format(self):
        stats = EngineStats(
            steady_state_solves=5,
            steady_state_cache_hits=5,
            expm_applications=12,
            peak_evals=2,
            batch_calls=1,
            batch_candidates=8,
            max_batch=8,
            phase_seconds={"tpt": 0.01},
        )
        line = stats.summary_line()
        assert "ss_solves=5" in line and "50%" in line
        report = stats.format()
        assert "engine stats:" in report and "tpt" in report

    def test_as_dict_roundtrips_counters(self):
        stats = EngineStats(steady_state_solves=2, batch_calls=1)
        d = stats.as_dict()
        assert d["steady_state_solves"] == 2
        assert d["batch_calls"] == 1
        assert "cache_hit_rate" in d


class TestResultIntegration:
    def test_scheduler_result_carries_stats(self, platform3):
        from repro.algorithms.ao import ao

        result = ao(platform3, m_cap=8)
        assert result.stats is not None
        assert result.stats.peak_evals > 0
        assert "engine:" in result.summary()

    def test_shared_engine_attributes_per_run(self, platform3):
        from repro.algorithms.exs import exs
        from repro.algorithms.lns import lns

        engine = ThermalEngine(platform3)
        r1 = lns(engine)
        r2 = exs(engine)
        # EXS enumerates through the batched path; LNS does not.
        assert r2.stats.steady_state_batch_rows > 0
        assert r1.stats.steady_state_batch_rows == 0
