"""Unit tests for the power model, McPAT tables, and DVFS machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModeError, PowerModelError
from repro.power.dvfs import (
    PAPER_LADDERS,
    TransitionOverhead,
    VoltageLadder,
    full_ladder,
    paper_ladder,
)
from repro.power.mcpat import TECHNOLOGY_TABLES, mcpat_like_power_model
from repro.power.model import PowerModel


class TestPowerModel:
    def test_psi_zero_at_idle(self, power_model):
        assert power_model.psi(0.0) == 0.0

    def test_psi_monotone_on_ladder(self, power_model):
        volts = np.linspace(0.6, 1.3, 20)
        psi = power_model.psi(volts)
        assert np.all(np.diff(psi) > 0)

    def test_psi_convexity(self, power_model):
        # midpoint rule: psi((a+b)/2) <= (psi(a)+psi(b))/2
        a, b = 0.7, 1.25
        mid = power_model.psi((a + b) / 2)
        assert mid <= (power_model.psi(a) + power_model.psi(b)) / 2

    def test_total_power_adds_leakage_feedback(self, power_model):
        v, theta = 1.0, 20.0
        expected = power_model.psi(v) + power_model.beta * theta
        assert power_model.total_power(v, theta) == pytest.approx(expected)

    def test_leakage_power_components(self, power_model):
        v, theta = 1.0, 10.0
        assert power_model.leakage_power(v, theta) == pytest.approx(
            power_model.alpha_lin * v + power_model.beta * theta
        )

    def test_dynamic_power_cubic(self, power_model):
        assert power_model.dynamic_power(1.0) == pytest.approx(power_model.gamma)

    def test_out_of_range_voltage_rejected(self, power_model):
        with pytest.raises(PowerModelError):
            power_model.psi(1.5)
        with pytest.raises(PowerModelError):
            power_model.psi(0.3)

    def test_idle_is_always_allowed(self, power_model):
        out = power_model.psi(np.array([0.0, 0.8, 0.0]))
        assert out[0] == 0.0 and out[2] == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"gamma": 0.0},
            {"gamma": -1.0},
            {"alpha_lin": -0.1},
            {"beta": -0.1},
            {"v_min": 0.0},
            {"v_min": 1.4, "v_max": 1.3},
        ],
    )
    def test_invalid_coefficients(self, kwargs):
        with pytest.raises(PowerModelError):
            PowerModel(**kwargs)

    @given(st.floats(min_value=0.01, max_value=50.0))
    @settings(max_examples=50, deadline=None)
    def test_psi_inverse_roundtrip(self, target_power):
        pm = PowerModel()
        v = pm.psi_inverse(target_power)
        # Verify the root satisfies the cubic regardless of clamping range.
        assert pm.alpha_lin * v + pm.gamma * v**3 == pytest.approx(
            target_power, rel=1e-9
        )

    def test_psi_inverse_zero(self, power_model):
        assert power_model.psi_inverse(0.0) == 0.0

    def test_psi_inverse_negative_raises(self, power_model):
        with pytest.raises(PowerModelError):
            power_model.psi_inverse(-1.0)


class TestMcPAT:
    def test_all_nodes_buildable(self):
        for node in TECHNOLOGY_TABLES:
            pm = mcpat_like_power_model(node)
            assert pm.gamma > 0

    def test_65nm_matches_calibration(self):
        pm = mcpat_like_power_model(65)
        assert pm == PowerModel()

    def test_unknown_node_raises(self):
        with pytest.raises(PowerModelError):
            mcpat_like_power_model(130)

    def test_leakage_share_grows_as_node_shrinks(self):
        betas = [TECHNOLOGY_TABLES[n]["beta"] for n in sorted(TECHNOLOGY_TABLES, reverse=True)]
        assert betas == sorted(betas)


class TestVoltageLadder:
    def test_paper_ladders(self):
        for n, levels in PAPER_LADDERS.items():
            lad = paper_ladder(n)
            assert len(lad) == n
            assert lad.levels == levels

    def test_unknown_ladder_raises(self):
        with pytest.raises(ModeError):
            paper_ladder(7)

    def test_full_ladder_has_15_levels(self):
        lad = full_ladder()
        assert len(lad) == 15
        assert lad.v_min == 0.6 and lad.v_max == 1.3

    def test_full_ladder_bad_step(self):
        with pytest.raises(ModeError):
            full_ladder(step=0.11)

    def test_requires_increasing_levels(self):
        with pytest.raises(ModeError):
            VoltageLadder((0.8, 0.6))
        with pytest.raises(ModeError):
            VoltageLadder((0.6, 0.6))

    def test_rejects_nonpositive(self):
        with pytest.raises(ModeError):
            VoltageLadder((0.0, 0.6))

    def test_lower_neighbor(self):
        lad = paper_ladder(4)  # 0.6, 0.8, 1.0, 1.3
        assert lad.lower_neighbor(0.95) == 0.8
        assert lad.lower_neighbor(1.0) == 1.0
        assert lad.lower_neighbor(2.0) == 1.3
        with pytest.raises(ModeError):
            lad.lower_neighbor(0.5)

    def test_upper_neighbor(self):
        lad = paper_ladder(4)
        assert lad.upper_neighbor(0.95) == 1.0
        assert lad.upper_neighbor(0.8) == 0.8
        with pytest.raises(ModeError):
            lad.upper_neighbor(1.35)

    def test_neighbors_bracket(self):
        lad = paper_ladder(2)
        lo, hi = lad.neighbors(0.9)
        assert (lo, hi) == (0.6, 1.3)
        assert lad.neighbors(0.5) == (0.6, 0.6)   # clamped low
        assert lad.neighbors(1.31) == (1.3, 1.3)  # clamped high
        assert lad.neighbors(0.6) == (0.6, 0.6)   # exact level

    def test_split_ratios_reconstruct_target(self):
        lad = paper_ladder(2)
        for v in (0.7, 0.95, 1.2085, 1.1748):
            lo, hi, r_l, r_h = lad.split_ratios(v)
            assert r_l + r_h == pytest.approx(1.0)
            assert lo * r_l + hi * r_h == pytest.approx(v)

    def test_split_ratios_table2(self):
        # The paper's Table II numbers fall straight out of eq. (11).
        lad = paper_ladder(2)
        _, _, _, rh_edge = lad.split_ratios(1.2085)
        _, _, _, rh_mid = lad.split_ratios(1.1748)
        assert rh_edge == pytest.approx(0.8693, abs=1e-4)
        assert rh_mid == pytest.approx(0.8211, abs=1e-4)

    def test_index_of(self):
        lad = paper_ladder(3)
        assert lad.index_of(0.8) == 1
        with pytest.raises(ModeError):
            lad.index_of(0.81)

    def test_contains_tolerance(self):
        lad = paper_ladder(2)
        assert lad.contains(0.6 + 1e-12)
        assert not lad.contains(0.61)


class TestTransitionOverhead:
    def test_paper_delta_formula(self):
        ov = TransitionOverhead(tau=5e-6)
        delta = ov.delta(0.6, 1.3)
        assert delta == pytest.approx((1.3 + 0.6) * 5e-6 / (1.3 - 0.6))

    def test_delta_requires_distinct_modes(self):
        ov = TransitionOverhead()
        with pytest.raises(PowerModelError):
            ov.delta(1.0, 1.0)

    def test_max_m_for_core(self):
        ov = TransitionOverhead(tau=5e-6)
        delta = ov.delta(0.6, 1.3)
        t_low = 4e-3
        expected = int(np.floor(t_low / (delta + 5e-6)))
        assert ov.max_m_for_core(t_low, 0.6, 1.3) == expected

    def test_max_m_zero_tau_unbounded(self):
        ov = TransitionOverhead(tau=0.0)
        assert ov.max_m_for_core(1e-3, 0.6, 1.3) >= 10**9

    def test_max_m_zero_low_time(self):
        ov = TransitionOverhead(tau=5e-6)
        assert ov.max_m_for_core(0.0, 0.6, 1.3) == 0

    def test_chip_wide_min(self):
        ov = TransitionOverhead(tau=5e-6)
        m1 = ov.max_m_for_core(4e-3, 0.6, 1.3)
        m2 = ov.max_m_for_core(1e-3, 0.6, 1.3)
        assert ov.max_m([(4e-3, 0.6, 1.3), (1e-3, 0.6, 1.3)]) == min(m1, m2)

    def test_no_oscillating_cores_unbounded(self):
        assert TransitionOverhead().max_m([]) >= 10**9

    def test_negative_tau_rejected(self):
        with pytest.raises(PowerModelError):
            TransitionOverhead(tau=-1e-6)
