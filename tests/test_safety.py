"""Tests for the safety layer: certificates, fallback chains, fault specs.

The robustness contract under test:

* every result leaving the registry carries an independent
  :class:`~repro.safety.certificate.SafetyCertificate`,
* an injected crash in *any* registered solver degrades through the
  fallback chain to a feasible certified schedule — visible in spans,
  metrics, and ``details["fallback"]`` — never an unhandled exception,
* fault specs validate their knobs and perturb deterministically.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.algorithms.registry import SOLVERS, get_solver, guarded_solve
from repro.engine import ThermalEngine
from repro.errors import ConfigurationError, InfeasibleError, SolverError
from repro.obs import METRICS, capture_spans
from repro.platform import paper_platform
from repro.safety import (
    FALLBACK_CHAIN,
    FaultSpec,
    SafetyCertificate,
    certify,
    perturbed_peak,
    run_fallback_hop,
    stuck_schedule,
)
from repro.schedule.builders import constant_schedule


@pytest.fixture(scope="module")
def engine2():
    return ThermalEngine(paper_platform(2, n_levels=2, t_max_c=65.0))


@pytest.fixture(scope="module")
def ill_engine():
    """A deliberately ill-conditioned 2-core platform.

    No preset crosses :data:`MARGIN_POLICY_CONDITION` (the worst,
    ``stack3d``, sits around 2e2), so the shrink policy's applied path
    needs a synthetic system: inflating one core's ambient conductance
    stretches the spectrum of ``G - E_beta`` past 1e4 while keeping it
    symmetric positive definite — the platform just cools that core
    harder, so every solver still runs.
    """
    from repro.platform import Platform
    from repro.thermal.model import ThermalModel
    from repro.thermal.rc import RCNetwork

    base = paper_platform(2, n_levels=2, t_max_c=65.0)
    net = base.model.network
    g = net.conductance.copy()
    g[0, 0] += 5e3
    network = RCNetwork(
        floorplan=net.floorplan,
        conductance=g,
        capacitance=net.capacitance,
        core_nodes=net.core_nodes,
    )
    model = ThermalModel(network, base.model.power,
                         t_ambient_c=base.model.t_ambient_c)
    return ThermalEngine(
        Platform(model=model, ladder=base.ladder,
                 overhead=base.overhead, t_max_c=65.0)
    )


@pytest.fixture(scope="module")
def ao_result(engine2):
    return get_solver("AO").solve(engine2, m_cap=16)


class TestCertify:
    def test_good_schedule_accepted(self, engine2, ao_result):
        cert = ao_result.certificate
        assert cert is not None
        assert cert.accepted and cert.independent and cert.step_up
        assert cert.disagreement <= cert.tolerance
        assert "matex" in cert.method_peaks and "claimed" in cert.method_peaks
        assert np.isfinite(cert.condition_number)

    def test_lying_peak_claim_rejected(self, engine2, ao_result):
        cert = certify(
            engine2,
            ao_result.schedule,
            claimed_peak=ao_result.peak_theta - 5.0,  # a 5 K lie
        )
        assert not cert.accepted
        assert any("disagree" in r for r in cert.reasons)

    def test_false_feasibility_claim_rejected(self, engine2):
        hot = constant_schedule(
            np.full(2, engine2.ladder.v_max), period=0.02
        )
        cert = certify(engine2, hot, theta_max=1.0, claimed_feasible=True)
        assert not cert.accepted
        assert cert.margin < 0
        assert any("claimed feasible" in r for r in cert.reasons)

    def test_inflated_throughput_claim_rejected(self, engine2, ao_result):
        cert = certify(
            engine2,
            ao_result.schedule,
            claimed_throughput=engine2.ladder.v_max + 1.0,
        )
        assert not cert.accepted
        assert any("throughput" in r for r in cert.reasons)

    def test_reference_oracle_route(self, engine2):
        sched = constant_schedule(
            np.full(2, engine2.ladder.v_min), period=0.02
        )
        cert = certify(engine2, sched, reference=True, reference_samples=32)
        assert "reference" in cert.method_peaks
        assert cert.accepted

    def test_dict_round_trip_is_json_safe(self, ao_result):
        cert = ao_result.certificate
        doc = json.loads(json.dumps(cert.as_dict()))
        assert SafetyCertificate.from_dict(doc) == cert

    def test_counters_increment(self, engine2, ao_result):
        before = METRICS.counter("safety.certificates").value
        rejected_before = METRICS.counter("safety.certificates_rejected").value
        certify(engine2, ao_result.schedule)
        certify(engine2, ao_result.schedule, claimed_peak=0.0)
        assert METRICS.counter("safety.certificates").value == before + 2
        assert (
            METRICS.counter("safety.certificates_rejected").value
            == rejected_before + 1
        )


class TestGuardedSolve:
    @pytest.mark.parametrize("name", sorted(SOLVERS))
    def test_injected_crash_degrades_for_every_solver(self, name, engine2):
        """The acceptance criterion: any solver crash lands on a feasible
        certified fallback, with the hop visible in spans and details."""

        def raiser(*_args, **_kwargs):
            raise SolverError(f"injected crash in {name}")

        spec = dataclasses.replace(get_solver(name), func=raiser)
        before = METRICS.counter("safety.fallback").value
        with capture_spans(isolate=True) as spans:
            result = guarded_solve(spec, engine2)
        assert result.name == spec.name  # grid assembly keys rows by name
        assert result.feasible
        cert = result.certificate
        assert cert is not None and cert.accepted and cert.independent
        fallback = result.details["fallback"]
        assert fallback["requested"] == spec.name
        assert fallback["hop"] in FALLBACK_CHAIN
        assert "injected crash" in fallback["failure"]
        assert METRICS.counter("safety.fallback").value > before
        assert any(s.name == "safety/fallback" for s in spans)

    def test_linalg_error_degrades(self, engine2):
        def raiser(*_args, **_kwargs):
            raise np.linalg.LinAlgError("synthetic eigensolver breakdown")

        spec = dataclasses.replace(get_solver("AO"), func=raiser)
        result = guarded_solve(spec, engine2)
        assert result.feasible and result.certificate.accepted

    def test_rejected_certificate_triggers_fallback(self, engine2):
        """A solver that lies about its peak is caught and replaced."""
        honest = get_solver("AO")

        def liar(engine, **params):
            r = honest.func(engine, **params)
            return dataclasses.replace(r, peak_theta=r.peak_theta - 5.0)

        spec = dataclasses.replace(honest, func=liar)
        result = guarded_solve(spec, engine2, m_cap=16)
        assert result.details["fallback"]["failure"].startswith(
            "certificate rejected"
        )
        assert result.certificate.accepted and result.feasible

    def test_infeasible_error_propagates(self, engine2):
        def declarer(*_args, **_kwargs):
            raise InfeasibleError("no feasible assignment at this threshold")

        spec = dataclasses.replace(get_solver("EXS"), func=declarer)
        with pytest.raises(InfeasibleError):
            guarded_solve(spec, engine2)

    def test_happy_path_untouched(self, engine2):
        guarded = guarded_solve("AO", engine2, m_cap=16)
        direct = get_solver("AO").solve(engine2, m_cap=16)
        assert guarded.throughput == direct.throughput
        assert "fallback" not in guarded.details

    def test_every_hop_produces_a_result(self, engine2):
        for hop in FALLBACK_CHAIN:
            result = run_fallback_hop(hop, engine2)
            assert result.schedule.n_cores == 2
            assert np.isfinite(result.peak_theta)


class TestMarginPolicy:
    """The ``"shrink"`` margin policy of :func:`guarded_solve`.

    On well-conditioned platforms it is a no-op with a recorded reason;
    past :data:`MARGIN_POLICY_CONDITION` with a nonzero certificate
    disagreement it re-solves against a tightened ``T_max`` and
    re-certifies the result against the original threshold.
    """

    def _near_liar(self, offset=0.02):
        """AO with its peak claim shifted by less than the tolerance —
        accepted certificate, nonzero route disagreement."""
        honest = get_solver("AO")

        def solver(engine, **params):
            r = honest.func(engine, **params)
            return dataclasses.replace(r, peak_theta=r.peak_theta - offset)

        return dataclasses.replace(honest, func=solver)

    def test_unknown_policy_rejected(self, engine2):
        with pytest.raises(ConfigurationError):
            guarded_solve("AO", engine2, margin_policy="bogus", m_cap=16)

    def test_off_and_none_leave_no_record(self, engine2):
        for policy in (None, "off"):
            result = guarded_solve(
                "AO", engine2, margin_policy=policy, m_cap=16
            )
            assert "margin_policy" not in result.details

    def test_well_conditioned_platform_skipped(self, engine2):
        result = guarded_solve(
            "AO", engine2, margin_policy="shrink", m_cap=16
        )
        record = result.details["margin_policy"]
        assert record["applied"] is False
        assert record["reason"] == "well conditioned"
        assert record["condition_number"] < record["condition_threshold"]

    def test_agreeing_routes_skipped(self, ill_engine):
        result = guarded_solve(
            "AO", ill_engine, margin_policy="shrink", m_cap=16
        )
        record = result.details["margin_policy"]
        assert record["condition_number"] >= record["condition_threshold"]
        assert record["applied"] is False
        assert record["reason"] == "reference routes agree"
        assert record["disagreement"] == 0.0

    def test_applied_on_ill_conditioned_disagreement(self, ill_engine):
        """The acceptance criterion: high condition number + route
        disagreement tightens T_max by the disagreement, and the
        re-certified result keeps the original threshold."""
        before = METRICS.counter("safety.margin_policy").value
        with capture_spans(isolate=True) as spans:
            result = guarded_solve(
                self._near_liar(), ill_engine,
                margin_policy="shrink", m_cap=16,
            )
        record = result.details["margin_policy"]
        assert record["applied"] is True
        assert record["shrink_theta"] == record["disagreement"] > 0.0
        assert (
            record["tightened_t_max_c"]
            == ill_engine.platform.t_max_c - record["disagreement"]
        )
        # Re-certified against the *original* engine, not the shrunk one.
        assert result.certificate.theta_max == ill_engine.theta_max
        assert result.certificate.accepted and result.feasible
        assert result.peak_theta <= ill_engine.theta_max + 1e-9
        assert METRICS.counter("safety.margin_policy").value == before + 1
        assert any(s.name == "safety/margin_policy" for s in spans)


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(sensor_noise_sigma=-1.0)
        with pytest.raises(ConfigurationError):
            FaultSpec(sensor_dropout_prob=1.5)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown fault fields"):
            FaultSpec.from_dict({"sensor_noise_sgima": 0.1})

    def test_perturb_reading_deterministic(self):
        spec = FaultSpec(sensor_noise_sigma=0.5, sensor_dropout_prob=0.5, seed=42)
        reading = np.array([10.0, 20.0, 30.0])
        previous = np.zeros(3)
        a = spec.perturb_reading(reading, previous, spec.rng())
        b = spec.perturb_reading(reading, previous, spec.rng())
        assert np.array_equal(a, b)
        assert not np.array_equal(a, reading)

    def test_drift_clamped(self):
        spec = FaultSpec(ambient_drift_k=3.0)
        assert spec.drift_at(-1.0) == 0.0
        assert spec.drift_at(0.5) == pytest.approx(1.5)
        assert spec.drift_at(7.0) == pytest.approx(3.0)

    def test_stuck_schedule_out_of_range(self, engine2):
        sched = constant_schedule(np.full(2, engine2.ladder.v_min), period=0.02)
        bad = FaultSpec(stuck_core=5)
        with pytest.raises(ConfigurationError, match="out of range"):
            stuck_schedule(sched, engine2.ladder, bad)

    def test_perturbed_peak_composes_faults(self, engine2, ao_result):
        clean = perturbed_peak(engine2, ao_result.schedule, FaultSpec())
        drifted = perturbed_peak(
            engine2, ao_result.schedule, FaultSpec(ambient_drift_k=2.0)
        )
        stuck = perturbed_peak(
            engine2,
            ao_result.schedule,
            FaultSpec(stuck_core=0, stuck_level=-1),
        )
        assert drifted == pytest.approx(clean + 2.0)
        assert stuck >= clean - 1e-9  # pinning at the top mode never cools


class TestCosimulateFaults:
    def _setup(self, engine2):
        from repro.workload.tasks import PeriodicTask

        sched = constant_schedule(
            np.full(2, engine2.ladder.v_min), period=0.02
        )
        tasks = [[PeriodicTask(name="t0", wcec=0.004, period_s=0.02)], []]
        return sched, tasks

    def test_faulted_peak_reported(self, engine2):
        from repro.sim import cosimulate

        sched, tasks = self._setup(engine2)
        report = cosimulate(
            engine2.model,
            sched,
            tasks,
            faults={"ambient_drift_k": 2.0},
        )
        assert report.faulted_peak_theta == pytest.approx(
            report.nominal_peak_theta + 2.0
        )
        assert "faulted peak" in report.summary()

    def test_no_faults_means_none(self, engine2):
        from repro.sim import cosimulate

        sched, tasks = self._setup(engine2)
        report = cosimulate(engine2.model, sched, tasks)
        assert report.faulted_peak_theta is None
        assert report.faults is None

    def test_stuck_core_needs_ladder(self, engine2):
        from repro.sim import cosimulate

        sched, tasks = self._setup(engine2)
        with pytest.raises(ConfigurationError, match="ladder"):
            cosimulate(
                engine2.model, sched, tasks, faults={"stuck_core": 0}
            )
        report = cosimulate(
            engine2.model,
            sched,
            tasks,
            faults={"stuck_core": 0, "stuck_level": -1},
            ladder=engine2.ladder,
        )
        assert report.faulted_peak_theta > report.nominal_peak_theta


class TestSafetyLayering:
    """certificate.py and faults.py sit below the solver layer.

    The registry and the reactive solver import them, so a
    ``repro.algorithms`` import there would be a cycle waiting to
    happen.  ``fallback.py`` is the one deliberate exception: its hops
    wrap concrete solvers.  Mirrors the ruff TID ban in pyproject.toml.
    """

    def test_lower_safety_modules_never_import_algorithms(self):
        import ast
        from pathlib import Path

        safety_dir = (
            Path(__file__).resolve().parents[1] / "src" / "repro" / "safety"
        )
        offenders = []
        for path in (safety_dir / "certificate.py", safety_dir / "faults.py"):
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                modules = (
                    [a.name for a in node.names]
                    if isinstance(node, ast.Import)
                    else [node.module]
                    if isinstance(node, ast.ImportFrom) and node.module
                    else []
                )
                offenders += [
                    f"{path.name}: {m}"
                    for m in modules
                    if m.startswith("repro.algorithms")
                ]
        assert not offenders, offenders


class TestCertifyCli:
    def test_exit_zero_on_agreement(self, capsys):
        from repro.cli import main

        code = main(
            ["certify", "AO", "--quick", "-o", "core_counts=2",
             "-o", "t_max_values=65"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "certificate ACCEPTED" in out

    def test_exit_four_on_disagreement(self, capsys):
        from repro.cli import main

        # A negative tolerance makes every route spread a violation —
        # the cheapest way to drive the rejection path end-to-end.
        code = main(
            ["certify", "LNS", "--quick", "-o", "core_counts=2",
             "-o", "t_max_values=65", "--tolerance=-1.0"]
        )
        assert code == 4
        assert "REJECTED" in capsys.readouterr().out

    def test_unknown_solver_exits_two(self, capsys):
        from repro.cli import main

        assert main(["certify", "nosuch"]) == 2
