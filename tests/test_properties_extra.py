"""Additional property-based tests: transform algebra and model invariants.

These go beyond the five theorems: algebraic identities of the schedule
transforms, exactness results the paper doesn't state (Theorem 1 is exact
for single-core platforms), serialization fuzzing, and linear-system
invariants of the thermal engine.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.floorplan.layout import grid_floorplan
from repro.power.model import PowerModel
from repro.schedule.builders import random_schedule, random_stepup_schedule
from repro.schedule.properties import core_workloads, is_step_up, throughput
from repro.schedule.serialization import schedule_from_json, schedule_to_json
from repro.schedule.transforms import m_oscillate, shift_core, step_up
from repro.thermal.model import ThermalModel
from repro.thermal.peak import peak_temperature, stepup_peak_temperature
from repro.thermal.rc import build_single_layer_network

LEVELS = (0.6, 0.8, 1.0, 1.2, 1.3)


def _rng(seed):
    return np.random.default_rng(seed)


@pytest.fixture(scope="session")
def model1():
    """Single-core platform model."""
    return ThermalModel(
        build_single_layer_network(grid_floorplan(1, 1)), PowerModel()
    )


class TestTransformAlgebra:
    @given(seed=st.integers(0, 5000), m1=st.integers(2, 5), m2=st.integers(2, 5))
    @settings(max_examples=25, deadline=None)
    def test_oscillation_composes(self, seed, m1, m2):
        s = random_schedule(3, _rng(seed), levels=LEVELS)
        a = m_oscillate(m_oscillate(s, m1), m2)
        b = m_oscillate(s, m1 * m2)
        assert a.period == pytest.approx(b.period)
        assert np.allclose(a.voltage_matrix, b.voltage_matrix)
        assert np.allclose(a.lengths, b.lengths)

    @given(seed=st.integers(0, 5000))
    @settings(max_examples=25, deadline=None)
    def test_stepup_commutes_with_oscillation(self, seed):
        # step_up(S(m)) == (step_up(S))(m): both orderings give the same
        # per-core sorted content at 1/m scale.
        s = random_schedule(3, _rng(seed), levels=LEVELS)
        a = step_up(m_oscillate(s, 3))
        b = m_oscillate(step_up(s), 3)
        assert np.allclose(
            core_workloads(a), core_workloads(b)
        )
        assert a.period == pytest.approx(b.period)
        assert is_step_up(a) and is_step_up(b)

    @given(seed=st.integers(0, 5000), frac1=st.floats(0.05, 0.95),
           frac2=st.floats(0.05, 0.95))
    @settings(max_examples=25, deadline=None)
    def test_shifts_compose_additively(self, seed, frac1, frac2):
        s = random_schedule(2, _rng(seed), levels=LEVELS)
        t_p = s.period
        a = shift_core(shift_core(s, 0, frac1 * t_p), 0, frac2 * t_p)
        b = shift_core(s, 0, ((frac1 + frac2) % 1.0) * t_p)
        ta = np.linspace(0, t_p, 37, endpoint=False)
        va = np.array([a.voltage_at(t)[0] for t in ta])
        vb = np.array([b.voltage_at(t)[0] for t in ta])
        # Allow boundary-sample disagreement at interval edges.
        assert (va == vb).mean() > 0.9

    @given(seed=st.integers(0, 5000))
    @settings(max_examples=25, deadline=None)
    def test_transforms_preserve_throughput(self, seed):
        s = random_schedule(3, _rng(seed), levels=LEVELS)
        base = throughput(s)
        assert throughput(step_up(s)) == pytest.approx(base)
        assert throughput(m_oscillate(s, 4)) == pytest.approx(base)
        assert throughput(shift_core(s, 1, 0.3 * s.period)) == pytest.approx(base)


class TestSingleCoreExactness:
    """For N = 1, the period wrap always changes the core's own voltage
    (or the schedule is constant), so the wrap-continuation epsilon
    vanishes and Theorem 1 is *exact* — matching the single-core
    literature the paper builds on ([25], [31])."""

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_theorem1_exact_for_single_core(self, model1, seed):
        s = random_stepup_schedule(1, _rng(seed), levels=LEVELS, period=0.05)
        literal = stepup_peak_temperature(
            model1, s, check=False, wrap_refine=False
        ).value
        general = peak_temperature(
            model1, s, stepup_fast_path=False, grid_per_interval=128
        ).value
        assert general <= literal + 1e-6


class TestSerializationFuzz:
    @given(seed=st.integers(0, 10_000), n=st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_any_random_schedule(self, seed, n):
        s = random_schedule(n, _rng(seed), levels=LEVELS)
        back = schedule_from_json(schedule_to_json(s))
        assert np.allclose(back.voltage_matrix, s.voltage_matrix)
        assert np.allclose(back.lengths, s.lengths)
        assert throughput(back) == pytest.approx(throughput(s))


class TestThermalInvariants:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_steady_state_positive(self, model3_x, seed):
        rng = _rng(seed)
        v = rng.choice(np.asarray(LEVELS), size=3)
        theta = model3_x.steady_state(v)
        assert np.all(theta >= -1e-12)

    @given(seed=st.integers(0, 10_000), scale=st.floats(0.1, 1.0))
    @settings(max_examples=20, deadline=None)
    def test_peak_monotone_in_uniform_power_scale(self, model3_x, seed, scale):
        # Scaling every injection down cannot raise the stable peak.
        s = random_stepup_schedule(3, _rng(seed), levels=LEVELS, period=0.05)
        full = stepup_peak_temperature(model3_x, s, check=False).value
        # Build a 'scaled' model by scaling gamma/alpha.
        pm = PowerModel(alpha_lin=0.1 * scale, gamma=5.0 * scale)
        cooler_model = ThermalModel(
            build_single_layer_network(grid_floorplan(1, 3)), pm
        )
        cooler = stepup_peak_temperature(cooler_model, s, check=False).value
        assert cooler <= full + 1e-9

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_periodic_fixed_point_unique(self, model3_x, seed):
        # Starting the period iteration anywhere converges to the same
        # stable status (rho(K) < 1).
        from repro.thermal.periodic import periodic_steady_state
        from repro.thermal.transient import simulate_schedule_period

        rng = _rng(seed)
        s = random_schedule(3, rng, levels=LEVELS, period=0.05)
        sol = periodic_steady_state(model3_x, s)
        theta = rng.uniform(0, 50, model3_x.n_nodes)
        for _ in range(250):
            theta = simulate_schedule_period(model3_x, s, theta)
        assert np.allclose(theta, sol.start_temperature, atol=1e-6)


@pytest.fixture(scope="session")
def model3_x(model3):
    return model3
