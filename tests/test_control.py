"""Tests for the integral-controller solver family and its seeding."""

from __future__ import annotations

import json
import re
from pathlib import Path

import numpy as np
import pytest

from repro.algorithms.control import (
    ControllerTrace,
    dc_gain_vector,
    integral_controller,
    scheduled_gains,
)
from repro.algorithms.registry import SOLVERS, guarded_solve
from repro.engine import ThermalEngine
from repro.errors import SolverError
from repro.obs import METRICS
from repro.platform import paper_platform
from repro.power.heterogeneous import big_little_power_model
from repro.safety.faults import FaultSpec

SRC = Path(__file__).resolve().parents[1] / "src"


@pytest.fixture(scope="module")
def engine3(platform3):
    return ThermalEngine(platform3)


class TestGainScheduling:
    def test_dc_gains_positive_and_symmetric(self, engine3):
        s = dc_gain_vector(engine3)
        assert s.shape == (3,)
        assert np.all(s > 0)
        # The 1x3 row is mirror-symmetric: edge cores share a DC gain,
        # the coupled middle core runs hotter per volt... or cooler —
        # either way, edges match each other.
        assert s[0] == pytest.approx(s[2], rel=1e-9)

    def test_dominant_vs_per_core_gains(self, engine3):
        k_dom = scheduled_gains(engine3, 1e-3)
        k_per = scheduled_gains(engine3, 1e-3, per_core=True)
        assert np.all(k_dom > 0) and np.all(k_per > 0)
        assert not np.allclose(k_dom, k_per)
        # Local time constants are faster than the dominant one, so a
        # larger fraction of the DC response lands per period and the
        # scheduled gains come out gentler.
        assert np.all(k_per <= k_dom + 1e-12)

    def test_gain_scale_is_linear(self, engine3):
        k1 = scheduled_gains(engine3, 1e-3)
        k2 = scheduled_gains(engine3, 1e-3, gain_scale=0.5)
        assert k2 == pytest.approx(0.5 * k1)


class TestIntegralController:
    def test_returns_settled_result(self, platform3):
        r = integral_controller(platform3)
        assert r.name == "Integral"
        assert r.throughput > 0
        assert np.isfinite(r.peak_theta)
        trace = r.details["trace"]
        assert isinstance(trace, ControllerTrace)
        assert trace.levels.shape == trace.commands.shape
        assert trace.integrals.shape == trace.commands.shape

    def test_levels_are_on_the_ladder(self, platform3):
        r = integral_controller(platform3)
        levels = np.asarray(platform3.ladder.levels)
        applied = r.details["trace"].levels
        assert np.all(np.isin(applied, levels))

    def test_integral_state_respects_antiwindup(self, platform3):
        r = integral_controller(platform3, faults={"sensor_noise_sigma": 3.0})
        z_lo, z_hi = (np.asarray(b) for b in r.details["windup_z_bounds"])
        z = r.details["trace"].integrals
        assert np.all(z >= z_lo - 1e-12)
        assert np.all(z <= z_hi + 1e-12)

    def test_commands_span_exactly_the_ladder(self, platform3):
        r = integral_controller(platform3)
        u = r.details["trace"].commands
        assert np.all(u >= platform3.ladder.v_min - 1e-9)
        assert np.all(u <= platform3.ladder.v_max + 1e-9)

    def test_explicit_ki_scalar_and_vector(self, platform3):
        r_scalar = integral_controller(platform3, ki=50.0)
        r_vector = integral_controller(platform3, ki=(50.0, 50.0, 50.0))
        assert r_scalar.details["gains"] == r_vector.details["gains"]

    def test_regulates_near_reference(self, platform3):
        """Settled sensor readings oscillate about the reference, not
        pinned at either ladder rail."""
        r = integral_controller(platform3, horizon=0.5)
        trace = r.details["trace"]
        settled = trace.levels[trace.levels.shape[0] // 2:]
        # The limit cycle genuinely dithers: both ladder levels appear.
        assert len(np.unique(settled)) == 2
        theta_ref = r.details["theta_ref"]
        cores_settled = trace.temperatures[
            trace.temperatures.shape[0] // 2:, :3
        ]
        assert abs(float(cores_settled.max(axis=1).mean()) - theta_ref) < 3.0

    def test_gain_sched_mode(self, platform3):
        r = integral_controller(platform3, gain_schedule=True)
        assert r.name == "GainSched"
        assert r.details["gain_schedule"] is True

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sensor_period": 0.0},
            {"reference_offset": -1.0},
            {"gain_scale": 0.0},
            {"hot_gain": 0.5},
            {"ki": -1.0},
        ],
    )
    def test_invalid_params_raise(self, platform3, kwargs):
        with pytest.raises(SolverError):
            integral_controller(platform3, **kwargs)

    def test_stuck_core_pinned_in_trace(self, platform3):
        r = integral_controller(
            platform3, faults={"stuck_core": 1, "stuck_level": 0}
        )
        applied = r.details["trace"].levels
        assert np.all(applied[:, 1] == platform3.ladder.v_min)

    def test_same_fault_seed_is_bitwise_identical(self, platform3):
        faults = {"sensor_noise_sigma": 1.0, "sensor_dropout_prob": 0.2,
                  "seed": 99}
        a = integral_controller(platform3, faults=faults)
        b = integral_controller(platform3, faults=faults)
        assert a.throughput == b.throughput
        assert a.peak_theta == b.peak_theta
        ta, tb = a.details["trace"], b.details["trace"]
        assert np.array_equal(ta.temperatures, tb.temperatures)
        assert np.array_equal(ta.levels, tb.levels)
        assert np.array_equal(ta.integrals, tb.integrals)

    def test_metrics_and_span_wiring(self, platform3):
        runs = METRICS.counter("controller.runs")
        before = runs.value
        from repro.obs import capture_spans

        with capture_spans(isolate=True) as spans:
            integral_controller(platform3, horizon=0.05)
        assert runs.value == before + 1
        assert any(s.name == "controller/loop" for s in spans)
        assert any(s.name == "solve/integral" for s in spans)

    def test_engine_and_platform_agree(self, platform3):
        via_platform = integral_controller(platform3, horizon=0.2)
        via_engine = integral_controller(ThermalEngine(platform3), horizon=0.2)
        assert via_platform.throughput == via_engine.throughput
        assert via_platform.peak_theta == via_engine.peak_theta


class TestRegistryIntegration:
    def test_guarded_solve_attaches_accepted_certificate(self, platform3):
        for name in ("integral", "gain_sched"):
            r = guarded_solve(name, platform3, horizon=0.2)
            assert r.certificate is not None
            assert r.certificate.accepted
            assert "fallback" not in r.details

    def test_certified_on_big_little_platform(self):
        bl = paper_platform(
            6,
            n_levels=2,
            t_max_c=55.0,
            power=big_little_power_model(big_cores=[0, 1, 2], n_cores=6),
        )
        r = guarded_solve("integral", bl, horizon=0.1)
        assert r.certificate is not None
        assert r.certificate.accepted
        assert r.throughput > 0

    def test_gain_sched_spec_forces_scheduling(self, platform3):
        r = SOLVERS["gain_sched"].solve(platform3, horizon=0.1)
        assert r.name == "GainSched"
        assert r.details["gain_schedule"] is True


class TestSeededRNGAudit:
    """Satellite: explicit generators only, and seeds that journal."""

    ALLOWED = ("default_rng", "SeedSequence", "Generator")

    def test_no_module_level_numpy_random_calls(self):
        """Every ``np.random.*`` use in src/ goes through an explicit
        Generator API — no legacy global-state sampling anywhere."""
        pattern = re.compile(r"np\.random\.(\w+)|numpy\.random\.(\w+)")
        offenders = []
        for path in sorted(SRC.rglob("*.py")):
            for lineno, line in enumerate(
                path.read_text().splitlines(), start=1
            ):
                for match in pattern.finditer(line):
                    attr = match.group(1) or match.group(2)
                    if attr not in self.ALLOWED:
                        offenders.append(f"{path.name}:{lineno}: {attr}")
        assert not offenders, (
            "legacy numpy.random usage (thread a Generator instead): "
            + ", ".join(offenders)
        )

    def test_faults_experiment_same_seed_bitwise_identical(self):
        from repro.experiments.faults import faults_experiment

        scenarios = (
            ("noise", {"sensor_noise_sigma": 0.5}),
            ("noise + dropout", {
                "sensor_noise_sigma": 0.5, "sensor_dropout_prob": 0.3,
            }),
        )
        a = faults_experiment(n_cores=2, scenarios=scenarios, m_cap=8, seed=5)
        b = faults_experiment(n_cores=2, scenarios=scenarios, m_cap=8, seed=5)
        assert a.rows == b.rows
        assert a.seed == b.seed == 5

    def test_faults_experiment_scenarios_get_distinct_seeds(self):
        from repro.experiments.faults import faults_experiment

        scenarios = (
            ("noise a", {"sensor_noise_sigma": 0.5}),
            ("noise b", {"sensor_noise_sigma": 0.5}),
        )
        r = faults_experiment(n_cores=2, scenarios=scenarios, m_cap=8, seed=5)
        seeds = [row.faults.seed for row in r.rows]
        assert len(set(seeds)) == len(seeds)

    def test_control_experiment_journals_every_seed(self, tmp_path):
        from repro.experiments.control import control_experiment

        run_dir = tmp_path / "run"
        r = control_experiment(
            intensities=(0.0, 1.0), horizon=0.05, m_cap=8, seed=123,
            run_dir=run_dir,
        )
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["experiment"] == "control"
        assert manifest["seed"] == 123
        assert manifest["fault_seeds"] == [row.seed for row in r.rows]
        journaled_seeds = set()
        with open(run_dir / "journal.jsonl", encoding="utf-8") as fh:
            for line in fh:
                row = json.loads(line)
                faults = (row.get("payload") or {}).get("params", {}).get(
                    "faults"
                )
                if faults:
                    journaled_seeds.add(faults["seed"])
        assert journaled_seeds == {
            row.seed for row in r.rows if row.intensity > 0
        }

    def test_control_experiment_same_seed_bitwise_identical(self):
        from repro.experiments.control import control_experiment

        a = control_experiment(intensities=(0.0, 1.0), horizon=0.05, m_cap=8)
        b = control_experiment(intensities=(0.0, 1.0), horizon=0.05, m_cap=8)
        assert a.headline() == b.headline()
