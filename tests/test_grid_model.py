"""Tests for the sub-core grid refinement."""

import numpy as np
import pytest

from repro.errors import ThermalModelError
from repro.floorplan.library import floorplan_2x1, floorplan_3x1, floorplan_3x3
from repro.power.model import PowerModel
from repro.schedule.builders import random_stepup_schedule, two_mode_schedule
from repro.thermal.grid_model import build_refined_model, refined_peak_error
from repro.thermal.model import ThermalModel
from repro.thermal.rc import build_single_layer_network
from repro.util.linalg import is_positive_definite, is_symmetric


@pytest.fixture(scope="module")
def coarse3():
    return ThermalModel(build_single_layer_network(floorplan_3x1()), PowerModel())


class TestConstruction:
    def test_k1_matches_coarse_exactly(self, coarse3):
        ref = build_refined_model(floorplan_3x1(), k=1)
        assert np.allclose(ref.model.network.conductance,
                           coarse3.network.conductance)
        assert np.allclose(ref.model.network.capacitance,
                           coarse3.network.capacitance)

    def test_matrix_properties(self):
        ref = build_refined_model(floorplan_3x3(), k=2)
        g = ref.model.network.conductance
        assert g.shape == (36, 36)
        assert is_symmetric(g)
        assert is_positive_definite(g)

    def test_totals_preserved(self):
        fp = floorplan_2x1()
        params_coarse = build_single_layer_network(fp)
        ref = build_refined_model(fp, k=3)
        # Total capacitance preserved.
        assert ref.model.network.capacitance.sum() == pytest.approx(
            params_coarse.capacitance.sum()
        )
        # Total ambient conductance preserved (row sums = ground paths).
        assert ref.model.network.conductance.sum() == pytest.approx(
            params_coarse.conductance.sum()
        )

    def test_power_scaling_preserves_injection(self):
        ref = build_refined_model(floorplan_2x1(), k=2)
        coarse_power = PowerModel()
        block_psi = np.asarray(
            ref.model.power.psi(ref.expand_voltages([1.0, 1.0]))
        )
        per_core = block_psi.reshape(2, 4).sum(axis=1)
        assert per_core == pytest.approx(
            np.asarray(coarse_power.psi(np.array([1.0, 1.0])))
        )

    def test_invalid_k(self):
        with pytest.raises(ThermalModelError):
            build_refined_model(floorplan_2x1(), k=0)

    def test_blocks_of(self):
        ref = build_refined_model(floorplan_2x1(), k=2)
        assert list(ref.blocks_of(0)) == [0, 1, 2, 3]
        assert list(ref.blocks_of(1)) == [4, 5, 6, 7]


class TestFidelity:
    def test_steady_state_close_to_coarse(self, coarse3):
        ref = build_refined_model(floorplan_3x1(), k=3)
        th_c = coarse3.steady_state_cores([1.0, 0.8, 1.2])
        th_r = ref.model.steady_state_cores(
            ref.expand_voltages([1.0, 0.8, 1.2])
        )
        # The core-average of the refined field tracks the lumped node
        # closely; the within-core gradient puts the hottest block a bit
        # above it.
        means = th_r.reshape(3, 9).mean(axis=1)
        assert np.allclose(means, th_c, atol=0.35)
        peaks = ref.core_peak(th_r)
        assert np.all(peaks >= means - 1e-9)
        assert np.allclose(peaks, th_c, atol=1.0)

    def test_peak_error_small_on_schedules(self, coarse3, rng):
        s = random_stepup_schedule(3, rng, period=0.03)
        ref = build_refined_model(floorplan_3x1(), k=2)
        coarse_pk, refined_pk, err = refined_peak_error(coarse3, ref, s)
        # The paper's core-level lumping is good to a fraction of a Kelvin.
        assert err < 0.5
        assert err / max(coarse_pk, 1.0) < 0.02

    def test_expand_schedule_shapes(self, coarse3):
        s = two_mode_schedule([0.6] * 3, [1.3] * 3, [0.5] * 3, 0.02)
        ref = build_refined_model(floorplan_3x1(), k=2)
        exp = ref.expand_schedule(s)
        assert exp.n_cores == 12
        assert exp.n_intervals == s.n_intervals
        assert exp.period == pytest.approx(s.period)
