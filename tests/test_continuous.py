"""Tests for the ideal continuous relaxation."""

import numpy as np
import pytest

from repro.algorithms.continuous import continuous_assignment
from repro.platform import paper_platform


class TestMotivationNumbers:
    def test_paper_3core_voltages(self):
        p = paper_platform(3, t_max_c=65.0)
        ca = continuous_assignment(p)
        assert ca.voltages == pytest.approx([1.2085, 1.1748, 1.2085], abs=2e-4)
        assert ca.throughput == pytest.approx(1.1972, abs=2e-4)

    def test_unclamped_cores_sit_at_threshold(self):
        p = paper_platform(3, t_max_c=65.0)
        ca = continuous_assignment(p)
        assert not ca.clamped.any()
        assert np.allclose(ca.core_theta, 30.0, atol=1e-9)

    def test_middle_core_lower_voltage(self):
        for n in (3, 9):
            p = paper_platform(n, t_max_c=60.0)
            ca = continuous_assignment(p)
            counts = p.floorplan.neighbor_counts()
            # more neighbours -> thermally worse -> lower ideal voltage
            order = np.argsort(counts)
            v_sorted = ca.voltages[order]
            assert v_sorted[0] >= v_sorted[-1] - 1e-12


class TestClamping:
    def test_high_clamp_at_generous_threshold(self):
        # A very high threshold pushes every budget past v_max.
        p = paper_platform(2, t_max_c=120.0)
        ca = continuous_assignment(p)
        assert ca.clamped.all()
        assert np.allclose(ca.voltages, 1.3)
        # Clamped cores run cooler than the threshold.
        assert np.all(ca.core_theta <= p.theta_max + 1e-9)

    def test_low_clamp_at_tight_threshold(self):
        # Find a threshold tight enough that some budget falls below v_min
        # while the platform stays feasible (all-low fits).
        for t_max in np.arange(38.8, 40.2, 0.05):
            p = paper_platform(3, t_max_c=float(t_max))
            if p.model.steady_state_cores(np.full(3, 0.6)).max() > p.theta_max:
                continue
            ca = continuous_assignment(p)
            if ca.clamped.any():
                assert np.all(ca.voltages >= 0.6 - 1e-12)
                assert np.all(ca.core_theta <= p.theta_max + 1e-9)
                return
        pytest.skip("no low-clamp threshold found in the scanned range")

    def test_infeasible_threshold_raises(self):
        from repro.errors import SolverError

        p = paper_platform(3, t_max_c=37.0)  # all-low already exceeds theta_max
        assert p.model.steady_state_cores(np.full(3, 0.6)).max() > p.theta_max
        with pytest.raises(SolverError):
            continuous_assignment(p)

    def test_partial_clamp_consistency(self):
        # Find a threshold where only some cores clamp; verify the free
        # cores sit exactly at theta_max.
        for t_max in np.arange(66.0, 90.0, 1.0):
            p = paper_platform(3, t_max_c=float(t_max))
            ca = continuous_assignment(p)
            if ca.clamped.any() and not ca.clamped.all():
                free = ~ca.clamped
                assert np.allclose(ca.core_theta[free], p.theta_max, atol=1e-9)
                # Verify the whole operating point against a direct solve.
                theta = p.model.steady_state_cores(ca.voltages)
                assert np.allclose(theta, ca.core_theta, atol=1e-8)
                break
        else:
            pytest.skip("no partial-clamp threshold found in the scanned range")

    def test_throughput_is_mean_voltage(self):
        p = paper_platform(6, t_max_c=60.0)
        ca = continuous_assignment(p)
        assert ca.throughput == pytest.approx(float(np.mean(ca.voltages)))


class TestMonotonicity:
    def test_throughput_grows_with_threshold(self):
        thr = []
        for t_max in (50.0, 55.0, 60.0, 65.0):
            p = paper_platform(3, t_max_c=t_max)
            thr.append(continuous_assignment(p).throughput)
        assert all(b >= a - 1e-12 for a, b in zip(thr, thr[1:]))

    def test_more_cores_lower_per_core_budget(self):
        v3 = continuous_assignment(paper_platform(3, t_max_c=60.0)).throughput
        v9 = continuous_assignment(paper_platform(9, t_max_c=60.0)).throughput
        assert v9 <= v3 + 1e-12
