"""Tests for peak identification: Theorem-1 fast path vs general search."""

import numpy as np
import pytest

from repro.errors import ScheduleError
from repro.schedule.builders import (
    constant_schedule,
    phase_schedule,
    random_schedule,
    random_stepup_schedule,
    two_mode_schedule,
)
from repro.thermal.peak import peak_temperature, stepup_peak_temperature


class TestStepupFastPath:
    def test_matches_general_search(self, model3, rng):
        for _ in range(5):
            s = random_stepup_schedule(3, rng, levels=(0.6, 0.9, 1.3), period=0.05)
            fast = stepup_peak_temperature(model3, s)
            general = peak_temperature(model3, s, stepup_fast_path=False,
                                       grid_per_interval=128)
            assert fast.value == pytest.approx(general.value, abs=2e-3)

    def test_rejects_non_stepup(self, model3):
        s = two_mode_schedule([0.6] * 3, [1.3] * 3, [0.5] * 3, 0.01, high_first=True)
        with pytest.raises(ScheduleError):
            stepup_peak_temperature(model3, s)

    def test_check_can_be_disabled(self, model3):
        s = two_mode_schedule([0.6] * 3, [1.3] * 3, [0.5] * 3, 0.01, high_first=True)
        # With check off it computes the end-of-period temperature silently.
        result = stepup_peak_temperature(model3, s, check=False)
        assert np.isfinite(result.value)

    def test_core_peaks_shape(self, model3):
        s = two_mode_schedule([0.6] * 3, [1.3] * 3, [0.2, 0.5, 0.8], 0.02)
        r = stepup_peak_temperature(model3, s)
        assert r.core_peaks.shape == (3,)
        assert r.value == pytest.approx(r.core_peaks.max())
        assert r.core == int(np.argmax(r.core_peaks))
        # In stable status t=0 and t=period are the same instant.
        assert r.time == pytest.approx(s.period) or r.time == pytest.approx(0.0)

    def test_celsius_conversion(self, model3):
        s = constant_schedule([1.0] * 3, period=0.01)
        r = stepup_peak_temperature(model3, s)
        assert r.celsius(model3) == pytest.approx(r.value + 35.0)


class TestGeneralPeak:
    def test_constant_schedule_peak_is_steady_state(self, model3):
        v = [1.2, 0.8, 1.0]
        s = constant_schedule(v, period=0.05)
        r = peak_temperature(model3, s)
        assert r.value == pytest.approx(model3.steady_state_cores(v).max(), abs=1e-9)

    def test_fast_path_taken_for_stepup(self, model3):
        s = two_mode_schedule([0.6] * 3, [1.3] * 3, [0.5] * 3, 0.02)
        with_fast = peak_temperature(model3, s, stepup_fast_path=True)
        assert with_fast.time == pytest.approx(s.period)

    def test_interior_peak_located(self, model2):
        # Core 0 bursts high during [0, 0.05) then idles at 0.6 V; its
        # temperature tops out at the burst end — strictly inside the period.
        s = phase_schedule([0.6, 0.6], [1.3, 0.6], 0.05, [0.0, 0.0], 0.1)
        r = peak_temperature(model2, s)
        assert r.core == 0
        assert r.time == pytest.approx(0.05, abs=0.01)

    def test_agrees_with_oracle_on_random(self, model3, rng):
        from repro.thermal.reference import reference_peak

        s = random_schedule(3, rng, levels=(0.6, 1.3), period=0.04, max_segments=3)
        ours = peak_temperature(model3, s, grid_per_interval=96).value
        oracle = reference_peak(model3, s, samples_per_interval=96)
        assert ours == pytest.approx(oracle, abs=5e-3)

    def test_core_peaks_bound_value(self, model3, rng):
        s = random_schedule(3, rng, levels=(0.6, 1.0, 1.3), period=0.03)
        r = peak_temperature(model3, s)
        assert r.value == pytest.approx(r.core_peaks.max(), abs=1e-9)
