"""Unit tests for floorplan geometry and adjacency."""

import numpy as np
import pytest

from repro.errors import FloorplanError
from repro.floorplan.layout import CoreGeometry, Floorplan, grid_floorplan
from repro.floorplan.library import (
    PAPER_CONFIGS,
    floorplan_2x1,
    floorplan_3x1,
    floorplan_3x2,
    floorplan_3x3,
    paper_floorplan,
)


class TestCoreGeometry:
    def test_default_is_paper_tile(self):
        geo = CoreGeometry()
        assert geo.width_m == pytest.approx(4e-3)
        assert geo.height_m == pytest.approx(4e-3)
        assert geo.area_m2 == pytest.approx(1.6e-5)

    @pytest.mark.parametrize("w,h", [(0, 1e-3), (1e-3, 0), (-1e-3, 1e-3)])
    def test_rejects_nonpositive_dimensions(self, w, h):
        with pytest.raises(FloorplanError):
            CoreGeometry(width_m=w, height_m=h)


class TestFloorplanShape:
    def test_grid_counts(self):
        fp = grid_floorplan(3, 3)
        assert fp.n_cores == 9
        assert fp.rows == 3 and fp.cols == 3

    def test_rejects_empty_grid(self):
        with pytest.raises(FloorplanError):
            Floorplan(rows=0, cols=3)

    def test_rejects_duplicate_occupied(self):
        with pytest.raises(FloorplanError):
            Floorplan(rows=2, cols=2, occupied=(0, 0, 1))

    def test_rejects_out_of_range_occupied(self):
        with pytest.raises(FloorplanError):
            Floorplan(rows=2, cols=2, occupied=(0, 5))

    def test_partial_occupancy(self):
        # L-shaped 3-core chip on a 2x2 grid.
        fp = Floorplan(rows=2, cols=2, occupied=(0, 1, 2))
        assert fp.n_cores == 3
        pairs = {(i, j) for i, j, _ in fp.adjacent_pairs()}
        assert pairs == {(0, 1), (0, 2)}

    def test_position_roundtrip(self):
        fp = grid_floorplan(2, 3)
        for core in range(fp.n_cores):
            row, col = fp.position(core)
            assert fp.core_at(row, col) == core

    def test_core_at_outside_returns_none(self):
        fp = grid_floorplan(2, 2)
        assert fp.core_at(-1, 0) is None
        assert fp.core_at(0, 5) is None

    def test_position_out_of_range_raises(self):
        fp = grid_floorplan(1, 2)
        with pytest.raises(FloorplanError):
            fp.position(2)


class TestAdjacency:
    def test_row_adjacency(self):
        fp = floorplan_3x1()
        pairs = {(i, j) for i, j, _ in fp.adjacent_pairs()}
        assert pairs == {(0, 1), (1, 2)}

    def test_grid_adjacency_3x3(self):
        fp = floorplan_3x3()
        counts = fp.neighbor_counts()
        # corner cores: 2 neighbours; edge cores: 3; center: 4
        assert sorted(counts) == [2, 2, 2, 2, 3, 3, 3, 3, 4]
        assert counts[4] == 4  # center of the 3x3 grid

    def test_adjacency_matrix_symmetric(self):
        fp = floorplan_3x2()
        adj = fp.adjacency_matrix()
        assert np.array_equal(adj, adj.T)
        assert np.all(np.diag(adj) == 0)

    def test_shared_edge_lengths(self):
        fp = grid_floorplan(2, 2, core_width_m=4e-3, core_height_m=2e-3)
        for i, j, edge in fp.adjacent_pairs():
            ri, ci = fp.position(i)
            rj, cj = fp.position(j)
            if ri == rj:  # horizontal neighbours share a vertical edge
                assert edge == pytest.approx(2e-3)
            else:
                assert edge == pytest.approx(4e-3)

    def test_centers_spacing(self):
        fp = floorplan_3x1()
        centers = fp.centers_m()
        gaps = np.diff(centers[:, 0])
        assert np.allclose(gaps, 4e-3)


class TestLibrary:
    @pytest.mark.parametrize("n", [2, 3, 6, 9])
    def test_paper_configs(self, n):
        fp = paper_floorplan(n)
        assert fp.n_cores == n
        rows, cols = PAPER_CONFIGS[n]
        assert (fp.rows, fp.cols) == (rows, cols)

    def test_unknown_count_raises(self):
        with pytest.raises(FloorplanError):
            paper_floorplan(5)

    def test_named_builders(self):
        assert floorplan_2x1().n_cores == 2
        assert floorplan_3x1().n_cores == 3
        assert floorplan_3x2().n_cores == 6
        assert floorplan_3x3().n_cores == 9

    def test_middle_core_fewer_exposed_edges(self):
        fp = floorplan_3x1()
        counts = fp.neighbor_counts()
        # edge cores have 1 neighbour (3 exposed edges), middle has 2.
        assert list(counts) == [1, 2, 1]
