"""Tests for the command-line interface."""

import pytest

from repro.cli import PLATFORM_KEYS, _parse_option, main
from repro.experiments.registry import EXPERIMENTS


class TestParseOption:
    def test_int(self):
        assert _parse_option("m_max=5") == ("m_max", 5)

    def test_float(self):
        assert _parse_option("step=0.5") == ("step", 0.5)

    def test_bool(self):
        assert _parse_option("flag=true") == ("flag", True)
        assert _parse_option("flag=False") == ("flag", False)

    def test_string(self):
        assert _parse_option("name=abc") == ("name", "abc")

    def test_tuple_of_ints(self):
        assert _parse_option("core_counts=2,3") == ("core_counts", (2, 3))

    def test_tuple_of_floats(self):
        assert _parse_option("t_max_values=55.0,65.0") == (
            "t_max_values",
            (55.0, 65.0),
        )

    def test_trailing_comma_singleton(self):
        assert _parse_option("core_counts=9,") == ("core_counts", (9,))

    def test_mixed_tuple(self):
        assert _parse_option("x=1,2.5,abc") == ("x", (1, 2.5, "abc"))

    def test_missing_equals(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_option("oops")


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out
        # The solver registry is enumerated alongside the experiments.
        assert "AO" in out and "PCO" in out

    def test_bare_experiment_form_is_retired(self, capsys):
        # The historical `repro fig2` shim is gone: argparse rejects the
        # unknown subcommand with its usage error (exit code 2).
        with pytest.raises(SystemExit) as exc:
            main(["fig2", "--quick"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_unknown_experiment_via_run(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_quick_fig2(self, capsys):
        assert main(["run", "fig2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out
        assert "finished in" in out

    def test_run_subcommand(self, capsys):
        assert main(["run", "table2", "--quick"]) == 0
        assert "Table II" in capsys.readouterr().out

    def test_legacy_subcommand_warns_and_runs(self, capsys):
        with pytest.warns(DeprecationWarning, match="repro run"):
            assert main(["legacy", "table2", "--quick"]) == 0
        captured = capsys.readouterr()
        assert "Table II" in captured.out
        assert "deprecated" in captured.err

    def test_option_override(self, capsys):
        assert main(["run", "fig5", "--quick", "-o", "m_max=2"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n1 ") or "1 " in out

    def test_quick_presets_reference_valid_experiments(self):
        with_quick = {n for n, spec in EXPERIMENTS.items() if spec.quick}
        assert with_quick <= set(EXPERIMENTS)
        assert "fig6" in with_quick

    def test_csv_export(self, tmp_path, capsys):
        out = tmp_path / "grid.csv"
        assert main(["run", "fig7", "--quick", "--csv", str(out)]) == 0
        text = out.read_text()
        assert text.startswith("cores,levels,t_max_c")
        assert len(text.splitlines()) > 1

    def test_csv_ignored_without_grid(self, tmp_path, capsys):
        out = tmp_path / "nope.csv"
        assert main(["run", "fig2", "--csv", str(out)]) == 0
        assert not out.exists()
        assert "ignored" in capsys.readouterr().err


class TestTraceAndStats:
    def test_run_trace_reconciles_with_journal(self, tmp_path, capsys):
        """Acceptance: the trace file's per-unit root spans must agree
        with the journal's EngineStats, counter for counter."""
        import json

        trace = tmp_path / "t.jsonl"
        run_dir = tmp_path / "rd"
        assert main([
            "run", "comparison", "--quick",
            "--trace", str(trace), "--run-dir", str(run_dir),
        ]) == 0
        assert "trace written" in capsys.readouterr().out

        rows = [json.loads(line) for line in trace.read_text().splitlines()]
        spans = [r for r in rows if "name" in r]
        roots = [s for s in spans if s["name"] == "unit/solve_cell"]
        assert roots, "trace holds no per-unit root spans"
        assert all("unit_id" in s for s in roots)

        journal = [
            json.loads(line)
            for line in (run_dir / "journal.jsonl").read_text().splitlines()
        ]
        assert len(roots) == len(journal)
        for key_trace, key_journal in (
            ("ss_solves", "steady_state_solves"),
            ("expm_applications", "expm_applications"),
        ):
            trace_total = sum(s["attrs"][key_trace] for s in roots)
            journal_total = sum(r["stats"][key_journal] for r in journal)
            assert trace_total == journal_total

        # Live (non-unit) spans cover the experiment and runner layers,
        # and the file ends with a metrics snapshot document.
        live = {s["name"] for s in spans if "unit_id" not in s}
        assert {"experiment/comparison", "runner/run", "runner/unit"} <= live
        assert any("metrics" in r for r in rows)

    def test_solve_trace_has_solver_phase_spans(self, tmp_path, capsys):
        import json

        trace = tmp_path / "solve.jsonl"
        assert main([
            "solve", "AO", "-o", "n_cores=2", "-o", "m_cap=8",
            "--trace", str(trace),
        ]) == 0
        names = {
            json.loads(line)["name"]
            for line in trace.read_text().splitlines()
            if "name" in json.loads(line)
        }
        assert "solve/AO" in names
        assert "ao/choose_m" in names

    def test_trace_sink_detached_after_run(self, tmp_path):
        from repro.obs import TRACER

        trace = tmp_path / "t.jsonl"
        main(["run", "table2", "--trace", str(trace)])
        assert not TRACER.enabled

    def test_stats_summarizes_run_dir(self, tmp_path, capsys):
        run_dir = tmp_path / "rd"
        assert main(["run", "comparison", "--quick", "--run-dir", str(run_dir)]) == 0
        capsys.readouterr()
        assert main(["stats", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "unit spans" in out
        assert "unit/solve_cell" in out
        assert "engine stats:" in out

    def test_stats_missing_run_dir_exits_2(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope")]) == 2
        assert "no run manifest" in capsys.readouterr().err


class TestSolve:
    def test_solve_ao_prints_engine_stats(self, capsys):
        assert main(["solve", "AO", "-o", "n_cores=3", "-o", "m_cap=8"]) == 0
        out = capsys.readouterr().out
        assert "AO: THR=" in out
        assert "engine stats:" in out
        assert "steady-state solves" in out

    def test_solve_case_insensitive(self, capsys):
        assert main(["solve", "lns", "-o", "n_cores=2"]) == 0
        assert "LNS: THR=" in capsys.readouterr().out

    def test_solve_unknown_solver(self, capsys):
        assert main(["solve", "nope"]) == 2
        assert "unknown solver" in capsys.readouterr().err

    def test_solve_rejects_bad_param(self, capsys):
        assert main(["solve", "EXS", "-o", "m_cap=8"]) == 1
        assert "does not accept" in capsys.readouterr().err

    def test_platform_keys_match_paper_family(self):
        from repro.platforms import get_family

        params = set(get_family("paper").params) | {"platform"}
        assert set(PLATFORM_KEYS) <= params
