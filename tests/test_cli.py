"""Tests for the command-line interface."""

import pytest

from repro.cli import QUICK_ARGS, _parse_option, main
from repro.experiments.registry import EXPERIMENTS


class TestParseOption:
    def test_int(self):
        assert _parse_option("m_max=5") == ("m_max", 5)

    def test_float(self):
        assert _parse_option("step=0.5") == ("step", 0.5)

    def test_bool(self):
        assert _parse_option("flag=true") == ("flag", True)
        assert _parse_option("flag=False") == ("flag", False)

    def test_string(self):
        assert _parse_option("name=abc") == ("name", "abc")

    def test_missing_equals(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_option("oops")


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_quick_fig2(self, capsys):
        assert main(["fig2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out
        assert "finished in" in out

    def test_quick_table2(self, capsys):
        assert main(["table2", "--quick"]) == 0
        assert "Table II" in capsys.readouterr().out

    def test_option_override(self, capsys):
        assert main(["fig5", "--quick", "-o", "m_max=2"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n1 ") or "1 " in out

    def test_quick_args_reference_valid_experiments(self):
        assert set(QUICK_ARGS) <= set(EXPERIMENTS)

    def test_csv_export(self, tmp_path, capsys):
        out = tmp_path / "grid.csv"
        assert main(["fig7", "--quick", "--csv", str(out)]) == 0
        text = out.read_text()
        assert text.startswith("cores,levels,t_max_c")
        assert len(text.splitlines()) > 1

    def test_csv_ignored_without_grid(self, tmp_path, capsys):
        out = tmp_path / "nope.csv"
        assert main(["fig2", "--csv", str(out)]) == 0
        assert not out.exists()
        assert "ignored" in capsys.readouterr().err
