"""Tests for the command-line interface."""

import pytest

from repro.cli import PLATFORM_KEYS, _parse_option, main
from repro.experiments.registry import EXPERIMENTS


class TestParseOption:
    def test_int(self):
        assert _parse_option("m_max=5") == ("m_max", 5)

    def test_float(self):
        assert _parse_option("step=0.5") == ("step", 0.5)

    def test_bool(self):
        assert _parse_option("flag=true") == ("flag", True)
        assert _parse_option("flag=False") == ("flag", False)

    def test_string(self):
        assert _parse_option("name=abc") == ("name", "abc")

    def test_tuple_of_ints(self):
        assert _parse_option("core_counts=2,3") == ("core_counts", (2, 3))

    def test_tuple_of_floats(self):
        assert _parse_option("t_max_values=55.0,65.0") == (
            "t_max_values",
            (55.0, 65.0),
        )

    def test_trailing_comma_singleton(self):
        assert _parse_option("core_counts=9,") == ("core_counts", (9,))

    def test_mixed_tuple(self):
        assert _parse_option("x=1,2.5,abc") == ("x", (1, 2.5, "abc"))

    def test_missing_equals(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_option("oops")


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out
        # The solver registry is enumerated alongside the experiments.
        assert "AO" in out and "PCO" in out

    def test_unknown_experiment(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_unknown_experiment_via_run(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_quick_fig2(self, capsys):
        assert main(["fig2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out
        assert "finished in" in out

    def test_run_subcommand(self, capsys):
        assert main(["run", "table2", "--quick"]) == 0
        assert "Table II" in capsys.readouterr().out

    def test_quick_table2(self, capsys):
        assert main(["table2", "--quick"]) == 0
        assert "Table II" in capsys.readouterr().out

    def test_option_override(self, capsys):
        assert main(["fig5", "--quick", "-o", "m_max=2"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n1 ") or "1 " in out

    def test_quick_presets_reference_valid_experiments(self):
        with_quick = {n for n, spec in EXPERIMENTS.items() if spec.quick}
        assert with_quick <= set(EXPERIMENTS)
        assert "fig6" in with_quick

    def test_csv_export(self, tmp_path, capsys):
        out = tmp_path / "grid.csv"
        assert main(["fig7", "--quick", "--csv", str(out)]) == 0
        text = out.read_text()
        assert text.startswith("cores,levels,t_max_c")
        assert len(text.splitlines()) > 1

    def test_csv_ignored_without_grid(self, tmp_path, capsys):
        out = tmp_path / "nope.csv"
        assert main(["fig2", "--csv", str(out)]) == 0
        assert not out.exists()
        assert "ignored" in capsys.readouterr().err


class TestSolve:
    def test_solve_ao_prints_engine_stats(self, capsys):
        assert main(["solve", "AO", "-o", "n_cores=3", "-o", "m_cap=8"]) == 0
        out = capsys.readouterr().out
        assert "AO: THR=" in out
        assert "engine stats:" in out
        assert "steady-state solves" in out

    def test_solve_case_insensitive(self, capsys):
        assert main(["solve", "lns", "-o", "n_cores=2"]) == 0
        assert "LNS: THR=" in capsys.readouterr().out

    def test_solve_unknown_solver(self, capsys):
        assert main(["solve", "nope"]) == 2
        assert "unknown solver" in capsys.readouterr().err

    def test_solve_rejects_bad_param(self, capsys):
        assert main(["solve", "EXS", "-o", "m_cap=8"]) == 1
        assert "does not accept" in capsys.readouterr().err

    def test_platform_keys_match_paper_platform(self):
        import inspect

        from repro.platform import paper_platform

        params = set(inspect.signature(paper_platform).parameters)
        assert set(PLATFORM_KEYS) <= params
