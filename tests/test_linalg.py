"""Unit tests for the eigendecomposition/expm helpers."""

import numpy as np
import pytest
import scipy.linalg

from repro.errors import ThermalModelError
from repro.util.linalg import (
    EigenExpm,
    is_positive_definite,
    is_symmetric,
    solve_linear,
    spectral_abscissa,
)


def random_rc_system(rng, n=5):
    """Random C-symmetrizable Hurwitz matrix A = -C^{-1} S."""
    m = rng.normal(size=(n, n))
    s = m @ m.T + n * np.eye(n)  # SPD
    c = rng.uniform(0.5, 2.0, size=n)
    return -s / c[:, None], c, s


class TestPredicates:
    def test_is_symmetric(self):
        a = np.array([[1.0, 2.0], [2.0, 3.0]])
        assert is_symmetric(a)
        a[0, 1] = 2.1
        assert not is_symmetric(a)

    def test_is_symmetric_non_square(self):
        assert not is_symmetric(np.ones((2, 3)))

    def test_is_positive_definite(self):
        assert is_positive_definite(np.eye(3))
        assert not is_positive_definite(-np.eye(3))
        assert not is_positive_definite(np.zeros((2, 2)))

    def test_spectral_abscissa(self):
        a = np.diag([-3.0, -1.0, -2.0])
        assert spectral_abscissa(a) == pytest.approx(-1.0)


class TestSolveLinear:
    def test_matches_scipy(self, rng):
        a = rng.normal(size=(4, 4)) + 4 * np.eye(4)
        b = rng.normal(size=4)
        assert np.allclose(solve_linear(a, b), scipy.linalg.solve(a, b))

    def test_singular_raises(self):
        with pytest.raises(ThermalModelError):
            solve_linear(np.zeros((2, 2)), np.ones(2))

    def test_rank_deficient_raises_chained(self):
        # A deliberately defective system: rank-1, so LAPACK's LU hits a
        # zero pivot.  The ThermalModelError must chain from scipy's
        # LinAlgError (the except branch, not a pre-check).
        rank1 = np.array([[1.0, 2.0], [2.0, 4.0]])
        with pytest.raises(ThermalModelError, match="singular") as excinfo:
            solve_linear(rank1, np.ones(2))
        assert isinstance(excinfo.value.__cause__, scipy.linalg.LinAlgError)

    def test_near_singular_raises(self):
        # Identical columns up to float64 resolution: scipy's LU flags
        # the zero pivot, we translate the exception type.
        near = np.array([[1.0, 1.0], [1.0, 1.0 + 1e-17]])
        with pytest.raises(ThermalModelError, match="singular"):
            solve_linear(near, np.ones(2))


class TestEigenExpm:
    def test_matches_scipy_expm(self, rng):
        a, c, _ = random_rc_system(rng)
        ee = EigenExpm(a, c_diag=c)
        for t in (0.0, 0.01, 0.5, 3.0):
            assert np.allclose(ee.expm(t), scipy.linalg.expm(a * t), atol=1e-9)

    def test_general_path_matches(self, rng):
        a, _, _ = random_rc_system(rng)
        ee = EigenExpm(a)  # no c_diag: general eig path
        assert np.allclose(ee.expm(0.3), scipy.linalg.expm(a * 0.3), atol=1e-8)

    def test_apply_expm_consistency(self, rng):
        a, c, _ = random_rc_system(rng)
        ee = EigenExpm(a, c_diag=c)
        x = rng.normal(size=a.shape[0])
        assert np.allclose(ee.apply_expm(0.7, x), ee.expm(0.7) @ x)

    def test_eigenvalues_negative_real(self, rng):
        a, c, _ = random_rc_system(rng)
        ee = EigenExpm(a, c_diag=c)
        assert np.all(ee.eigenvalues < 0)
        assert np.isrealobj(ee.eigenvalues)

    def test_modal_coefficients_reconstruct(self, rng):
        a, c, _ = random_rc_system(rng)
        ee = EigenExpm(a, c_diag=c)
        x = rng.normal(size=a.shape[0])
        r = ee.modal_coefficients(x)
        t = 0.42
        reconstructed = (r * np.exp(ee.eigenvalues * t)[None, :]).sum(axis=1)
        assert np.allclose(reconstructed, ee.apply_expm(t, x))

    def test_propagate_batch(self, rng):
        a, c, _ = random_rc_system(rng)
        ee = EigenExpm(a, c_diag=c)
        x = rng.normal(size=a.shape[0])
        times = np.array([0.0, 0.1, 0.5])
        batch = ee.propagate_batch(times, x)
        for k, t in enumerate(times):
            assert np.allclose(batch[k], ee.apply_expm(t, x))

    def test_negative_time_rejected(self, rng):
        a, c, _ = random_rc_system(rng)
        ee = EigenExpm(a, c_diag=c)
        with pytest.raises(ValueError):
            ee.expm(-1.0)
        with pytest.raises(ValueError):
            ee.apply_expm(-0.1, np.zeros(a.shape[0]))

    def test_non_hurwitz_rejected(self):
        with pytest.raises(ThermalModelError):
            EigenExpm(np.diag([-1.0, 0.5]), c_diag=np.ones(2))

    def test_non_square_rejected(self):
        with pytest.raises(ThermalModelError):
            EigenExpm(np.ones((2, 3)))

    def test_bad_c_diag_rejected(self):
        a = -np.eye(3)
        with pytest.raises(ThermalModelError):
            EigenExpm(a, c_diag=np.array([1.0, -1.0, 1.0]))
        with pytest.raises(ThermalModelError):
            EigenExpm(a, c_diag=np.ones(2))

    def test_complex_spectrum_rejected_on_general_path(self):
        # A rotation-like matrix has complex eigenvalues.
        a = np.array([[-0.1, -10.0], [10.0, -0.1]])
        with pytest.raises(ThermalModelError):
            EigenExpm(a)
