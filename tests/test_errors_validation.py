"""Tests for the exception hierarchy and validation helpers."""

import numpy as np
import pytest

from repro import errors
from repro.util.validation import (
    as_1d_float,
    as_2d_float,
    check_finite,
    check_in_range,
    check_positive,
)


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        leaves = [
            errors.ConfigurationError,
            errors.FloorplanError,
            errors.PowerModelError,
            errors.ThermalModelError,
            errors.ThermalRunawayError,
            errors.ScheduleError,
            errors.ModeError,
            errors.SolverError,
            errors.InfeasibleError,
            errors.ConvergenceError,
        ]
        for cls in leaves:
            assert issubclass(cls, errors.ReproError)

    def test_value_error_compatibility(self):
        # Validation-style errors double as ValueError for generic callers.
        for cls in (errors.ConfigurationError, errors.ScheduleError):
            assert issubclass(cls, ValueError)

    def test_runtime_error_compatibility(self):
        for cls in (errors.SolverError, errors.InfeasibleError):
            assert issubclass(cls, RuntimeError)

    def test_runaway_is_thermal_model_error(self):
        assert issubclass(errors.ThermalRunawayError, errors.ThermalModelError)

    def test_catching_base_catches_leaf(self):
        with pytest.raises(errors.ReproError):
            raise errors.InfeasibleError("nope")


class TestValidationHelpers:
    def test_as_1d_float_coerces(self):
        out = as_1d_float([1, 2, 3], "x")
        assert out.dtype == float
        assert out.shape == (3,)

    def test_as_1d_float_scalar(self):
        assert as_1d_float(5, "x").shape == (1,)

    def test_as_1d_float_length_check(self):
        with pytest.raises(ValueError):
            as_1d_float([1, 2], "x", length=3)

    def test_as_1d_float_rejects_2d(self):
        with pytest.raises(ValueError):
            as_1d_float(np.ones((2, 2)), "x")

    def test_as_2d_float(self):
        out = as_2d_float([[1, 2], [3, 4]], "m")
        assert out.shape == (2, 2)
        with pytest.raises(ValueError):
            as_2d_float([1, 2], "m")
        with pytest.raises(ValueError):
            as_2d_float([[1, 2]], "m", shape=(2, 2))

    def test_check_finite(self):
        check_finite(np.array([1.0, 2.0]), "x")
        with pytest.raises(ValueError):
            check_finite(np.array([1.0, np.nan]), "x")
        with pytest.raises(ValueError):
            check_finite(np.array([np.inf]), "x")

    def test_check_positive(self):
        assert check_positive(1.0, "x") == 1.0
        assert check_positive(0.0, "x", strict=False) == 0.0
        with pytest.raises(ValueError):
            check_positive(0.0, "x")
        with pytest.raises(ValueError):
            check_positive(-1.0, "x", strict=False)

    def test_check_in_range(self):
        assert check_in_range(0.5, "x", 0.0, 1.0) == 0.5
        with pytest.raises(ValueError):
            check_in_range(1.5, "x", 0.0, 1.0)


class TestMainModule:
    def test_python_dash_m_entry(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0
        assert "fig6" in proc.stdout
