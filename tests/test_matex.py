"""Unit tests for the MatEx-style analytic interval solution."""

import numpy as np
import pytest

from repro.errors import ThermalModelError
from repro.thermal.matex import interval_peak, interval_solution


class TestIntervalSolution:
    def test_endpoints_match_propagate(self, model3, rng):
        theta0 = rng.uniform(0, 20, size=model3.n_nodes)
        v = [1.2, 0.6, 0.9]
        sol = interval_solution(model3, theta0, v, 0.01)
        assert np.allclose(sol.temperature_at(0.0), theta0, atol=1e-9)
        assert np.allclose(
            sol.end_temperature(), model3.propagate(theta0, 0.01, v), atol=1e-10
        )

    def test_temperatures_batch_consistent(self, model3, rng):
        theta0 = rng.uniform(0, 20, size=model3.n_nodes)
        sol = interval_solution(model3, theta0, [0.8, 0.8, 0.8], 0.02)
        times = np.linspace(0, 0.02, 9)
        batch = sol.temperatures(times)
        for k, t in enumerate(times):
            assert np.allclose(batch[k], sol.temperature_at(t))

    def test_times_outside_interval_rejected(self, model3):
        sol = interval_solution(
            model3, np.zeros(model3.n_nodes), [0.8, 0.8, 0.8], 0.01
        )
        with pytest.raises(ThermalModelError):
            sol.temperatures([0.02])
        with pytest.raises(ThermalModelError):
            sol.temperatures([-0.001])

    def test_negative_length_rejected(self, model3):
        with pytest.raises(ThermalModelError):
            interval_solution(model3, np.zeros(model3.n_nodes), [0.6] * 3, -1.0)

    def test_derivative_matches_finite_difference(self, model3, rng):
        theta0 = rng.uniform(0, 25, size=model3.n_nodes)
        sol = interval_solution(model3, theta0, [1.3, 0.6, 1.0], 0.05)
        t, h = 0.013, 1e-7
        for node in range(model3.n_nodes):
            fd = (
                sol.temperature_at(t + h)[node] - sol.temperature_at(t - h)[node]
            ) / (2 * h)
            assert sol.derivative_at(t, node) == pytest.approx(fd, rel=1e-5)


class TestPeakSearch:
    def test_rising_interval_peaks_at_end(self, model3):
        # From ambient under constant power, temperature only rises.
        val, node, when = interval_peak(
            model3, np.zeros(model3.n_nodes), [1.3, 1.3, 1.3], 0.02
        )
        assert when == pytest.approx(0.02, abs=1e-9)
        assert val == pytest.approx(
            model3.propagate(np.zeros(model3.n_nodes), 0.02, [1.3] * 3).max(),
            rel=1e-9,
        )

    def test_cooling_interval_peaks_at_start(self, model3):
        hot = model3.steady_state([1.3, 1.3, 1.3])
        val, node, when = interval_peak(model3, hot, [0.6, 0.6, 0.6], 0.05)
        assert when == pytest.approx(0.0, abs=1e-9)
        assert val == pytest.approx(hot.max(), rel=1e-12)

    def test_interior_peak_found(self, model3):
        # Start cold on core 0 but hot on core 2, run core 0 high: core 2
        # decays while core 0 rises -> some node peaks strictly inside.
        theta0 = model3.steady_state([0.0, 0.0, 1.3])
        sol = interval_solution(model3, theta0, [1.3, 0.0, 0.0], 0.05)
        val, node, when = sol.peak(grid=16, refine=True)
        # Refinement must beat (or match) the coarse grid estimate.
        coarse = sol.temperatures(np.linspace(0, 0.05, 16)).max()
        assert val >= coarse - 1e-12

    def test_refined_at_least_grid(self, model3, rng):
        theta0 = rng.uniform(0, 30, size=model3.n_nodes)
        sol = interval_solution(model3, theta0, [0.9, 1.2, 0.7], 0.02)
        refined, _, _ = sol.peak(grid=8, refine=True)
        dense = sol.temperatures(np.linspace(0, 0.02, 4096)).max()
        assert refined >= dense - 1e-6

    def test_cores_only_restriction(self, model6_stacked, rng):
        theta0 = rng.uniform(0, 10, size=model6_stacked.n_nodes)
        v = [1.3, 0.6, 1.3, 0.6, 1.3, 0.6]
        val_all, node_all, _ = interval_peak(
            model6_stacked, theta0, v, 0.1, cores_only=False
        )
        val_cores, node_cores, _ = interval_peak(
            model6_stacked, theta0, v, 0.1, cores_only=True
        )
        assert val_cores <= val_all + 1e-12
        assert node_cores in model6_stacked.network.core_nodes

    def test_zero_length_peak_rejected(self, model3):
        sol = interval_solution(model3, np.zeros(model3.n_nodes), [0.6] * 3, 0.0)
        with pytest.raises(ThermalModelError):
            sol.peak()
