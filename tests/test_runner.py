"""Tests for the fault-tolerant sharded experiment runner.

Covers the tentpole guarantees: content-addressed unit identity, the
JSONL journal round-trip (including torn trailing lines), per-unit
failure isolation (raise / timeout / killed worker), bounded retry with
backoff, resume that re-runs only the missing units, and run-level
EngineStats aggregation.  The kill-mid-sweep acceptance test drives the
real ``repro run comparison`` CLI, SIGKILLs it mid-run, resumes with
``--resume``, and checks the result rows are byte-identical to an
uninterrupted run modulo timing fields.
"""

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.engine import EngineStats
from repro.errors import RunnerError
from repro.experiments.comparison import build_grid
from repro.runner import (
    Journal,
    RunnerConfig,
    WorkUnit,
    comparison_units,
    read_manifest,
    run,
    units_hash,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")


def probe(behavior="ok", **extra) -> WorkUnit:
    payload = {"behavior": behavior, **extra}
    return WorkUnit(kind="probe", payload=payload, label=f"probe-{behavior}")


#: Timing fields a resumed run may legitimately differ in.
TIMING_KEYS = ("runtime_s", "stats", "spans", "elapsed_s", "attempts")


def strip_timing(row: dict) -> dict:
    """A journal row with every timing-dependent field removed."""
    row = {k: v for k, v in row.items() if k not in TIMING_KEYS}
    result = row.get("result")
    if isinstance(result, dict):
        row["result"] = {
            k: v for k, v in result.items() if k not in TIMING_KEYS
        }
    return row


class TestWorkUnit:
    def test_unit_id_is_content_hash(self):
        a = probe("ok", value=1)
        b = WorkUnit(kind="probe", payload={"value": 1, "behavior": "ok"},
                     label="different label")
        assert a.unit_id == b.unit_id  # identity ignores label, key order
        assert a.unit_id != probe("ok", value=2).unit_id

    def test_units_hash_order_insensitive(self):
        u1, u2 = probe("ok", value=1), probe("ok", value=2)
        assert units_hash([u1, u2]) == units_hash([u2, u1])
        assert units_hash([u1]) != units_hash([u1, u2])

    def test_comparison_units_filter_params_per_solver(self):
        units = comparison_units(
            (2,), (2,), (55.0,), ("LNS", "AO"),
            {"period": 0.02, "m_cap": 8, "m_step": 1, "shift_grid": 8},
        )
        by_algo = {u.payload["algo"]: u for u in units}
        assert set(by_algo) == {"LNS", "AO"}
        assert "m_cap" not in by_algo["LNS"].payload["params"]
        assert by_algo["AO"].payload["params"]["m_cap"] == 8


class TestJournal:
    def test_round_trip_last_wins(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with Journal(path) as j:
            j.append({"unit_id": "a", "status": "error"})
            j.append({"unit_id": "b", "status": "ok"})
            j.append({"unit_id": "a", "status": "ok"})
        rows = Journal.load(path)
        assert rows["a"]["status"] == "ok"
        assert rows["b"]["status"] == "ok"

    def test_tolerates_torn_trailing_line(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with Journal(path) as j:
            j.append({"unit_id": "a", "status": "ok"})
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"unit_id": "b", "stat')  # killed mid-append
        rows = Journal.load(path)
        assert set(rows) == {"a"}

    def test_missing_file_is_empty(self, tmp_path):
        assert Journal.load(tmp_path / "nope.jsonl") == {}


class TestFaultInjection:
    """A failing unit records an error row; the sweep always completes."""

    def test_raising_unit_never_aborts_sweep(self):
        report = run(
            [probe("ok", value=1), probe("raise"), probe("ok", value=2)],
            RunnerConfig(retries=0),
        )
        assert report.total == 3 and report.ok == 2 and report.errors == 1
        row = next(
            r for r in report.records.values() if r["status"] == "error"
        )
        assert row["error"]["type"] == "RuntimeError"
        assert "injected" in row["error"]["message"]

    def test_raising_unit_parallel(self):
        report = run(
            [probe("ok", value=1), probe("raise"), probe("ok", value=2)],
            RunnerConfig(parallel=True, max_workers=2, retries=0),
        )
        assert report.ok == 2 and report.errors == 1

    def test_timeout_terminates_hung_unit(self):
        t0 = time.monotonic()
        report = run(
            [probe("sleep", seconds=60.0), probe("ok", value=1)],
            RunnerConfig(parallel=True, max_workers=2, timeout_s=1.0,
                         retries=0),
        )
        assert time.monotonic() - t0 < 30.0  # nowhere near the 60 s sleep
        assert report.ok == 1 and report.errors == 1
        row = next(
            r for r in report.records.values() if r["status"] == "error"
        )
        assert row["error"]["type"] == "TimeoutError"

    def test_killed_worker_is_recorded_not_fatal(self):
        report = run(
            [probe("kill"), probe("ok", value=1)],
            RunnerConfig(parallel=True, max_workers=2, retries=0),
        )
        assert report.ok == 1 and report.errors == 1
        row = next(
            r for r in report.records.values() if r["status"] == "error"
        )
        assert row["error"]["type"] == "WorkerCrashed"
        assert "-9" in row["error"]["message"]

    @pytest.mark.parametrize("parallel", [False, True])
    def test_flaky_unit_recovers_via_retry(self, tmp_path, parallel):
        marker = tmp_path / f"marker-{parallel}"
        unit = probe("flaky", marker=str(marker))
        config = RunnerConfig(parallel=parallel, max_workers=1, retries=2,
                              backoff_s=0.01)
        report = run([unit], config)
        assert report.ok == 1 and report.errors == 0
        assert report.records[unit.unit_id]["attempts"] == 2

    def test_retries_are_bounded(self, tmp_path):
        report = run([probe("raise")], RunnerConfig(retries=2, backoff_s=0.0))
        assert report.errors == 1
        (row,) = report.records.values()
        assert row["attempts"] == 3  # 1 attempt + 2 retries, then final


class TestResume:
    def test_resume_runs_only_missing_units(self, tmp_path):
        units = [probe("ok", value=i) for i in range(4)]
        run_dir = tmp_path / "run"
        run(units, RunnerConfig(), run_dir=run_dir)

        # Simulate a crash that lost the last two rows.
        journal_path = run_dir / "journal.jsonl"
        lines = journal_path.read_text().splitlines()
        journal_path.write_text("\n".join(lines[:2]) + "\n")

        report = run(units, RunnerConfig(), run_dir=run_dir, resume=True)
        assert report.skipped == 2
        assert report.ok == 4  # skipped rows still count toward totals
        appended = journal_path.read_text().splitlines()
        assert len(appended) == 4  # exactly the two missing rows re-ran

    def test_resume_skips_error_rows_by_default(self, tmp_path):
        units = [probe("raise"), probe("ok", value=1)]
        run_dir = tmp_path / "run"
        first = run(units, RunnerConfig(retries=0), run_dir=run_dir)
        assert first.errors == 1
        report = run(units, RunnerConfig(retries=0), run_dir=run_dir,
                     resume=True)
        assert report.skipped == 2 and report.errors == 1

    def test_resume_can_retry_failed_rows(self, tmp_path):
        marker = tmp_path / "marker"
        units = [probe("flaky", marker=str(marker)), probe("ok", value=1)]
        run_dir = tmp_path / "run"
        first = run(units, RunnerConfig(retries=0), run_dir=run_dir)
        assert first.errors == 1
        report = run(
            units, RunnerConfig(retries=0, retry_failed=True),
            run_dir=run_dir, resume=True,
        )
        assert report.errors == 0 and report.ok == 2

    def test_resume_rejects_mismatched_unit_set(self, tmp_path):
        run_dir = tmp_path / "run"
        run([probe("ok", value=1)], RunnerConfig(), run_dir=run_dir)
        with pytest.raises(RunnerError, match="different.*unit set"):
            run([probe("ok", value=2)], RunnerConfig(), run_dir=run_dir,
                resume=True)

    def test_fresh_run_refuses_existing_run_dir(self, tmp_path):
        run_dir = tmp_path / "run"
        run([probe("ok", value=1)], RunnerConfig(), run_dir=run_dir)
        with pytest.raises(RunnerError, match="already holds a run"):
            run([probe("ok", value=1)], RunnerConfig(), run_dir=run_dir)

    def test_resume_without_manifest_fails(self, tmp_path):
        with pytest.raises(RunnerError, match="no run manifest"):
            run([probe("ok", value=1)], RunnerConfig(),
                run_dir=tmp_path / "missing", resume=True)


class TestManifest:
    def test_manifest_captures_run_provenance(self, tmp_path):
        units = [probe("ok", value=1), probe("ok", value=2)]
        run_dir = tmp_path / "run"
        run(units, RunnerConfig(parallel=True, max_workers=3, timeout_s=5.0),
            run_dir=run_dir)
        manifest = read_manifest(run_dir)
        assert manifest["n_units"] == 2
        assert manifest["units_hash"] == units_hash(units)
        assert manifest["workers"] == 3
        assert manifest["config"]["timeout_s"] == 5.0
        assert len(manifest["git_sha"]) == 40  # repo is a git checkout
        assert sorted(manifest["unit_ids"]) == sorted(
            u.unit_id for u in units
        )


class TestGridThroughRunner:
    """build_grid semantics are preserved across execution modes."""

    def test_sequential_equals_parallel(self, tmp_path):
        kwargs = dict(
            core_counts=(2,), level_counts=(2,), t_max_values=(55.0, 65.0),
            approaches=("LNS", "EXS"),
        )
        seq = build_grid(**kwargs)
        par = build_grid(
            **kwargs,
            runner=RunnerConfig(parallel=True, max_workers=2),
        )
        assert len(seq.cells) == len(par.cells) == 2
        for a, b in zip(seq.cells, par.cells):
            assert (a.n_cores, a.n_levels, a.t_max_c) == (
                b.n_cores, b.n_levels, b.t_max_c
            )
            for name in ("LNS", "EXS"):
                assert a.throughput(name) == pytest.approx(
                    b.throughput(name), abs=0
                )

    def test_infeasible_cell_records_infeasible_not_error(self):
        # 37 C is below the all-low steady state: EXS has no feasible point.
        grid = build_grid(
            core_counts=(3,), level_counts=(2,), t_max_values=(37.0,),
            approaches=("EXS",),
        )
        assert grid.report.infeasible == 1 and grid.report.errors == 0
        assert "EXS" not in grid.cells[0].results

    def test_aggregated_stats_equal_sum_of_unit_stats(self, tmp_path):
        run_dir = tmp_path / "run"
        grid = build_grid(
            core_counts=(2, 3), level_counts=(2,), t_max_values=(55.0,),
            approaches=("LNS", "EXS", "AO"), m_cap=8, run_dir=run_dir,
        )
        rows = Journal.load(run_dir / "journal.jsonl")
        assert len(rows) == 6
        expected = EngineStats.sum(
            EngineStats.from_dict(row["stats"]) for row in rows.values()
        )
        assert grid.report.stats == expected
        # Units share session-scoped engines, so a warm process may serve
        # every steady state from cache — count both forms of work.
        assert expected.peak_evals > 0
        assert expected.steady_state_solves + expected.steady_state_cache_hits > 0


def _wait_for_journal_rows(path: Path, n: int, timeout: float = 60.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if path.exists() and len(path.read_text().splitlines()) >= n:
            return
        time.sleep(0.02)
    raise AssertionError(f"journal {path} never reached {n} rows")


class TestUnitSpanJournal:
    """Per-unit observability spans ride in the journal rows."""

    def _unit(self, algo="LNS"):
        return WorkUnit(
            kind="solve_cell",
            payload={
                "n_cores": 2, "n_levels": 2, "t_max_c": 55.0, "tau": 5e-6,
                "algo": algo, "params": {},
            },
            label=f"{algo}@2x2",
        )

    def test_spans_round_trip_through_journal(self, tmp_path):
        from repro.obs import Span

        rd = tmp_path / "rd"
        report = run([self._unit()], run_dir=rd)
        row = next(iter(report.records.values()))
        spans = row["spans"]
        assert spans, "solve_cell row carries no spans"

        roots = [s for s in spans if s["parent_id"] is None]
        assert [r["name"] for r in roots] == ["unit/solve_cell"]
        # The root span's attrs are derived from the same stats dict the
        # row stores — the invariant `repro run --trace` reconciles on.
        assert roots[0]["attrs"]["ss_solves"] == row["stats"]["steady_state_solves"]
        assert (
            roots[0]["attrs"]["expm_applications"]
            == row["stats"]["expm_applications"]
        )

        reloaded = Journal.load(rd / "journal.jsonl")[row["unit_id"]]
        assert reloaded["spans"] == spans
        rebuilt = [Span.from_dict(d) for d in reloaded["spans"]]
        assert any(s.name == "solve/LNS" for s in rebuilt)

    def test_parallel_worker_ships_spans_home(self, tmp_path):
        report = run(
            [self._unit()],
            config=RunnerConfig(parallel=True, max_workers=1),
            run_dir=tmp_path / "rd",
        )
        row = next(iter(report.records.values()))
        assert any(s["name"] == "unit/solve_cell" for s in row["spans"])

    def test_resume_counts_spans_exactly_once(self, tmp_path):
        from repro.obs import run_dir_summary

        rd = tmp_path / "rd"
        run([self._unit()], run_dir=rd)
        report = run([self._unit()], run_dir=rd, resume=True)
        assert report.skipped == 1
        summary = run_dir_summary(rd)
        assert summary.span_agg["unit/solve_cell"].count == 1
        assert summary.span_agg["solve/LNS"].count == 1

    def test_unit_spans_stay_out_of_live_sinks(self, tmp_path):
        """A live sink during a sequential run sees runner spans but not
        the unit-internal ones (those travel via the journal only)."""
        from repro.obs import TRACER, MemorySink

        sink = MemorySink()
        TRACER.add_sink(sink)
        try:
            run([self._unit()], run_dir=tmp_path / "rd")
        finally:
            TRACER.remove_sink(sink)
        names = {s.name for s in sink.spans}
        assert "runner/run" in names
        assert "runner/unit" in names
        assert "unit/solve_cell" not in names
        assert "solve/LNS" not in names


class TestKillAndResumeCLI:
    """Acceptance: SIGKILL a parallel `repro run comparison` mid-sweep,
    resume it, and get byte-identical result rows to an uninterrupted run
    (modulo timing fields)."""

    CLI_OPTS = [
        "run", "comparison",
        "-o", "core_counts=2,3",
        "-o", "level_counts=2,",
        "-o", "t_max_values=55.0,",
        "-o", "approaches=LNS,EXS,AO",
        "-o", "m_cap=12",
    ]

    def _cli(self, *extra, check=True):
        env = dict(os.environ, PYTHONPATH=SRC)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", *self.CLI_OPTS, *extra],
            cwd=REPO_ROOT, env=env,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        if not check:
            return proc
        out, err = proc.communicate(timeout=300)
        assert proc.returncode == 0, err.decode()
        return proc

    def test_kill_mid_sweep_then_resume_is_byte_identical(self, tmp_path):
        baseline_dir = tmp_path / "baseline"
        victim_dir = tmp_path / "victim"

        # Uninterrupted reference run.
        self._cli("--run-dir", str(baseline_dir))

        # Start the same sweep, then SIGKILL it as soon as the journal
        # holds its first finished unit (one worker => still mid-sweep).
        proc = self._cli(
            "--parallel", "--workers", "1", "--run-dir", str(victim_dir),
            check=False,
        )
        try:
            _wait_for_journal_rows(victim_dir / "journal.jsonl", 1)
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.communicate(timeout=60)

        interrupted = Journal.load(victim_dir / "journal.jsonl")
        assert len(interrupted) >= 1  # something settled before the kill

        # Resume re-runs only the missing units and completes the sweep.
        self._cli("--resume", str(victim_dir))

        base_rows = Journal.load(baseline_dir / "journal.jsonl")
        resumed_rows = Journal.load(victim_dir / "journal.jsonl")
        assert set(base_rows) == set(resumed_rows) and len(base_rows) == 6
        for uid in base_rows:
            assert strip_timing(resumed_rows[uid]) == strip_timing(
                base_rows[uid]
            ), f"unit {uid} diverged after resume"

    def test_all_units_failing_yields_exit_status_3(self, tmp_path):
        env = dict(os.environ, PYTHONPATH=SRC)
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "run", "comparison",
                "-o", "core_counts=3,", "-o", "approaches=PCO,",
                "-o", "m_cap=128",
                "--parallel", "--workers", "1",
                "--timeout", "0.01", "--retries", "0",
                "--run-dir", str(tmp_path / "run"),
            ],
            cwd=REPO_ROOT, env=env, capture_output=True, timeout=300,
        )
        assert proc.returncode == 3
        assert b"FAILED" in proc.stdout
        rows = Journal.load(tmp_path / "run" / "journal.jsonl")
        assert all(r["status"] == "error" for r in rows.values())

