"""Freezes the public API surface and the obs layering rule.

``repro.__all__`` is the supported API: names and call signatures in it
may not change within a major version.  These tests snapshot both, so an
accidental rename, removal, or parameter reshuffle fails CI instead of
silently breaking downstream users.  Additions are deliberate: extending
the snapshot here is the act of publishing a new name.
"""

import ast
import inspect
from pathlib import Path

import repro

SRC_OBS = Path(__file__).resolve().parents[1] / "src" / "repro" / "obs"
SRC_SCALING = Path(__file__).resolve().parents[1] / "src" / "repro" / "scaling"
SRC_REALTIME = (
    Path(__file__).resolve().parents[1] / "src" / "repro" / "realtime"
)

#: The frozen surface.  Edit ONLY when deliberately publishing/retiring
#: a public name (and say so in the changelog).
PUBLIC_SURFACE = sorted([
    "Platform",
    "paper_platform",
    "platform_3d",
    "PlatformSpec",
    "platform_names",
    "load_platform",
    "evaluate",
    "EvaluationResult",
    "ThermalEngine",
    "EngineStats",
    "engine_entrypoint",
    "span",
    "capture_spans",
    "METRICS",
    "SchedulerResult",
    "SolverSpec",
    "SOLVERS",
    "get_solver",
    "solve",
    "guarded_solve",
    "SafetyCertificate",
    "certify",
    "FaultSpec",
    "ao",
    "pco",
    "exs",
    "exs_pruned",
    "lns",
    "continuous_assignment",
    "integral_controller",
    "dark_silicon_ao",
    "PowerModel",
    "TransitionOverhead",
    "VoltageLadder",
    "paper_ladder",
    "PeriodicSchedule",
    "m_oscillate",
    "step_up",
    "throughput",
    "ThermalModel",
    "peak_temperature",
    "stepup_peak_temperature",
    "Floorplan",
    "grid_floorplan",
    "paper_floorplan",
    "minimize_peak",
    "TaskSet",
    "PeriodicTask",
    "schedule_taskset",
    "FrameWorkload",
    "RTTask",
    "plan_frames",
    "simulate_recovery",
    "cosimulate",
    "run_experiment",
    "ReproError",
    "SchedulerSession",
    "ScheduleCache",
    "default_session",
    "__version__",
])


class TestFrozenSurface:
    def test_all_matches_snapshot(self):
        assert sorted(repro.__all__) == PUBLIC_SURFACE

    def test_every_name_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def _params(self, func):
        return list(inspect.signature(func).parameters)

    def test_solve_signature(self):
        assert self._params(repro.solve)[:2] == ["name", "platform"]

    def test_evaluate_signature(self):
        assert self._params(repro.evaluate) == [
            "platform", "schedule", "general", "grid_per_interval",
        ]

    def test_load_platform_signature(self):
        assert self._params(repro.load_platform) == ["spec", "overrides"]

    def test_paper_platform_leading_params(self):
        assert self._params(repro.paper_platform)[:4] == [
            "n_cores", "n_levels", "t_max_c", "t_ambient_c",
        ]

    def test_solver_entry_points_take_engine_first(self):
        """The union collapse: every solver entry point is engine-first
        (the decorator coerces a bare Platform at the boundary)."""
        for func in (repro.ao, repro.pco, repro.lns, repro.exs,
                     repro.exs_pruned, repro.dark_silicon_ao,
                     repro.minimize_peak):
            first = self._params(func)[0]
            assert first in ("platform", "engine"), func

    def test_solvers_accept_platform_and_engine(self):
        platform = repro.load_platform("paper", n_cores=2, n_levels=2)
        engine = repro.ThermalEngine(platform)
        a = repro.lns(platform)
        b = repro.lns(engine)
        assert a.throughput == b.throughput


class TestObsLayering:
    """repro.obs must sit below the solver and experiment layers.

    Mirrors the ruff TID ban (pyproject.toml) so the rule holds even
    where ruff isn't installed — and covers dynamic imports too.
    """

    BANNED_PREFIXES = ("repro.algorithms", "repro.experiments")

    def _imported_modules(self, tree: ast.AST):
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    yield alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                yield node.module

    def test_obs_never_imports_upper_layers(self):
        offenders = []
        for path in sorted(SRC_OBS.glob("*.py")):
            tree = ast.parse(path.read_text(), filename=str(path))
            for module in self._imported_modules(tree):
                if module.startswith(self.BANNED_PREFIXES):
                    offenders.append(f"{path.name}: {module}")
        assert not offenders, (
            "repro.obs must not import solver/experiment layers: "
            + ", ".join(offenders)
        )

    def test_obs_imports_standalone(self):
        """repro.obs must import cleanly without the upper layers.

        The parent ``repro/__init__`` imports the whole stack, so the
        subprocess stubs it out: with a bare namespace package in its
        place, ``import repro.obs`` executes only obs's own imports —
        which must not touch repro.algorithms / repro.experiments.
        """
        import subprocess
        import sys

        code = (
            "import sys, types; "
            "pkg = types.ModuleType('repro'); "
            "pkg.__path__ = [sys.argv[1]]; "
            "sys.modules['repro'] = pkg; "
            "import repro.obs; "
            "bad = [m for m in sys.modules "
            "if m.startswith(('repro.algorithms', 'repro.experiments'))]; "
            "assert not bad, bad"
        )
        pkg_dir = str(Path(__file__).resolve().parents[1] / "src" / "repro")
        proc = subprocess.run(
            [sys.executable, "-c", code, pkg_dir],
            env={"PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr


class TestRealtimeLayering:
    """repro.realtime sits below the solver and experiment layers.

    The ``realtime`` experiment and the runner's ``realtime_cell``
    executor import the scheduler, never the other way round; mirrors
    the ruff TID ban (pyproject.toml) so the rule holds even where ruff
    isn't installed.
    """

    BANNED_PREFIXES = ("repro.algorithms", "repro.experiments")

    def test_realtime_never_imports_upper_layers(self):
        offenders = []
        for path in sorted(SRC_REALTIME.glob("*.py")):
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                modules = []
                if isinstance(node, ast.Import):
                    modules = [alias.name for alias in node.names]
                elif isinstance(node, ast.ImportFrom) and node.module:
                    modules = [node.module]
                for module in modules:
                    if module.startswith(self.BANNED_PREFIXES):
                        offenders.append(f"{path.name}: {module}")
        assert not offenders, (
            "repro.realtime must not import solver/experiment layers: "
            + ", ".join(offenders)
        )


class TestScalingLayering:
    """repro.scaling is a platform *generator*, below solvers/experiments.

    The ``scaling`` experiment imports the generator, never the other way
    round; mirrors the ruff TID ban (pyproject.toml) so the rule holds
    even where ruff isn't installed.
    """

    BANNED_PREFIXES = ("repro.algorithms", "repro.experiments")

    def test_scaling_never_imports_upper_layers(self):
        offenders = []
        for path in sorted(SRC_SCALING.glob("*.py")):
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                modules = []
                if isinstance(node, ast.Import):
                    modules = [alias.name for alias in node.names]
                elif isinstance(node, ast.ImportFrom) and node.module:
                    modules = [node.module]
                for module in modules:
                    if module.startswith(self.BANNED_PREFIXES):
                        offenders.append(f"{path.name}: {module}")
        assert not offenders, (
            "repro.scaling must not import solver/experiment layers: "
            + ", ".join(offenders)
        )
