"""Tests for the comparison-grid machinery shared by Figs. 6/7 and Table V."""

import numpy as np
import pytest

from repro.experiments.comparison import (
    APPROACHES,
    CellResult,
    ComparisonGrid,
    build_grid,
    run_cell,
)
from repro.platform import paper_platform


@pytest.fixture(scope="module")
def small_grid():
    return build_grid(
        core_counts=(2, 3),
        level_counts=(2,),
        t_max_values=(55.0, 65.0),
        approaches=("LNS", "EXS", "AO"),
        m_cap=10,
    )


class TestRunCell:
    def test_selected_approaches_only(self):
        p = paper_platform(2, n_levels=2, t_max_c=55.0)
        cell = run_cell(p, approaches=("LNS", "EXS"))
        assert set(cell.results) == {"LNS", "EXS"}
        assert np.isnan(cell.throughput("AO"))

    def test_unknown_approach_raises(self):
        p = paper_platform(2, n_levels=2, t_max_c=55.0)
        with pytest.raises(ValueError):
            run_cell(p, approaches=("MAGIC",))

    def test_infeasible_approach_absent(self):
        # Threshold below the all-low point: EXS is infeasible and skipped.
        p = paper_platform(3, n_levels=2, t_max_c=37.0)
        theta = p.model.steady_state_cores(np.full(3, 0.6))
        assert theta.max() > p.theta_max
        cell = run_cell(p, approaches=("EXS",))
        assert "EXS" not in cell.results
        assert np.isnan(cell.throughput("EXS"))


class TestCellResult:
    def test_improvement_math(self):
        p = paper_platform(3, n_levels=2, t_max_c=65.0)
        cell = run_cell(p, approaches=("EXS", "AO"), m_cap=10)
        imp = cell.improvement("AO", "EXS")
        expected = cell.throughput("AO") / cell.throughput("EXS") - 1.0
        assert imp == pytest.approx(expected)

    def test_improvement_nan_when_missing(self):
        cell = CellResult(n_cores=2, n_levels=2, t_max_c=55.0, results={})
        assert np.isnan(cell.improvement("AO", "EXS"))
        assert np.isnan(cell.runtime("AO"))


class TestComparisonGrid:
    def test_find_by_coordinates(self, small_grid):
        cell = small_grid.find(3, t_max_c=65.0)
        assert cell.n_cores == 3
        assert cell.t_max_c == 65.0

    def test_find_missing_raises(self, small_grid):
        with pytest.raises(KeyError):
            small_grid.find(9)
        with pytest.raises(KeyError):
            small_grid.find(2, n_levels=5)

    def test_improvements_filter_nan(self, small_grid):
        imps = small_grid.improvements("AO", "EXS")
        assert np.all(np.isfinite(imps))
        assert imps.size == len(small_grid.cells)

    def test_to_csv_shape(self, small_grid):
        csv = small_grid.to_csv()
        lines = csv.strip().splitlines()
        assert len(lines) == 1 + len(small_grid.cells)
        header = lines[0].split(",")
        assert header[:3] == ["cores", "levels", "t_max_c"]
        for name in APPROACHES:
            assert f"thr_{name.lower()}" in header
