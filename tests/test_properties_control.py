"""Property-based suite for the closed-loop integral controller.

Three behavioural invariants, checked over hypothesis-drawn platforms
and fault scenarios rather than hand-picked cases:

1. **Bounded settled overshoot** — after the warm-up window, the trace
   stays within ``theta_max + tol`` where ``tol`` is the platform's own
   two-sensor-period reaction budget (a stale read plus one reaction
   delay at full heating rate).  A controller that stops reacting, or a
   sim refactor that breaks the sensor→command loop, blows through it.
2. **Anti-windup** — the integral state never leaves its clamp interval,
   no matter how violent the sensor faults are.
3. **Noise monotonicity** — in the noise-averaging regime the
   ``hot_gain`` asymmetry turns sensor noise into lost throughput:
   seed-averaged throughput is non-increasing in noise sigma, up to the
   duty-cycle quantization floor.

Profiles: loads the ``ci`` profile by default (derandomized, few
examples); set ``HYPOTHESIS_PROFILE=dev`` for a wider search locally.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.algorithms.control import integral_controller
from repro.engine import ThermalEngine
from repro.platform import paper_platform

settings.register_profile(
    "ci", max_examples=15, deadline=None, derandomize=True, print_blob=True
)
settings.register_profile("dev", max_examples=60, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))

SENSOR_PERIOD = 1e-3


@st.composite
def platforms(draw):
    """Small paper platforms across core counts, ladders, thresholds."""
    n_cores = draw(st.sampled_from([2, 3]))
    n_levels = draw(st.sampled_from([2, 3]))
    t_max_c = draw(st.floats(50.0, 80.0))
    return paper_platform(n_cores, n_levels=n_levels, t_max_c=t_max_c)


def reaction_budget(engine: ThermalEngine, theta_ref: float) -> float:
    """Worst-case temperature rise over two sensor periods from the
    reference: one stale read plus one reaction delay, both at the full-
    speed heating rate.  The controller cannot do better than this; a
    correct controller must not do worse (after settling)."""
    model = engine.model
    v_full = np.full(engine.n_cores, engine.ladder.v_max)
    theta_ss_max = float(engine.steady_state_cores(v_full).max())
    alpha = float(np.exp(-SENSOR_PERIOD / model.slowest_time_constant))
    return 2.0 * (1.0 - alpha) * max(theta_ss_max - theta_ref, 0.0)


class TestSettledOvershootBound:
    @given(platform=platforms())
    def test_trace_within_theta_max_plus_tol(self, platform):
        engine = ThermalEngine(platform)
        offset = 1.0
        theta_ref = engine.theta_max - offset
        v_lo = np.full(engine.n_cores, engine.ladder.v_min)
        # Feasible platform: the loop can actually cool below its
        # reference — otherwise regulation is physically impossible and
        # the bound tells us nothing.
        assume(float(engine.steady_state_cores(v_lo).max()) < theta_ref)
        r = integral_controller(
            engine, reference_offset=offset, sensor_period=SENSOR_PERIOD
        )
        tol = reaction_budget(engine, theta_ref) - offset + 1e-6
        assert r.peak_theta <= engine.theta_max + tol
        trace = r.details["trace"]
        settled = trace.temperatures[trace.temperatures.shape[0] // 2:]
        assert float(settled.max()) <= engine.theta_max + tol


class TestAntiWindup:
    @given(
        platform=platforms(),
        sigma=st.floats(0.0, 5.0),
        dropout=st.floats(0.0, 0.9),
        seed=st.integers(0, 2**31 - 1),
        gain_scale=st.floats(0.05, 2.0),
    )
    def test_integral_state_always_clamped(
        self, platform, sigma, dropout, seed, gain_scale
    ):
        r = integral_controller(
            platform,
            gain_scale=gain_scale,
            horizon=0.1,
            faults={
                "sensor_noise_sigma": sigma,
                "sensor_dropout_prob": dropout,
                "seed": seed,
            },
        )
        z_lo, z_hi = (np.asarray(b) for b in r.details["windup_z_bounds"])
        z = r.details["trace"].integrals
        assert np.all(z >= z_lo - 1e-12)
        assert np.all(z <= z_hi + 1e-12)
        # The clamp interval itself maps exactly onto the ladder span.
        gains = np.asarray(r.details["gains"])
        u_mid = 0.5 * (platform.ladder.v_min + platform.ladder.v_max)
        assert u_mid + gains * z_lo == pytest.approx(platform.ladder.v_min)
        assert u_mid + gains * z_hi == pytest.approx(platform.ladder.v_max)


class TestNoiseMonotonicity:
    HORIZON = 0.75
    N_SEEDS = 3

    def _mean_throughput(self, platform, sigma, seed_base):
        thr = []
        for k in range(self.N_SEEDS):
            faults = None
            if sigma > 0:
                faults = {
                    "sensor_noise_sigma": sigma,
                    "seed": seed_base + k,
                }
            r = integral_controller(
                platform,
                gain_scale=0.1,  # the noise-averaging regime
                horizon=self.HORIZON,
                faults=faults,
            )
            thr.append(r.throughput)
        return float(np.mean(thr))

    @given(
        sigma_lo=st.floats(0.0, 1.5),
        gap=st.floats(0.5, 1.5),
        seed_base=st.integers(0, 10_000),
    )
    def test_throughput_non_increasing_in_sigma(
        self, platform3, sigma_lo, gap, seed_base
    ):
        sigma_hi = sigma_lo + gap
        lo = self._mean_throughput(platform3, sigma_lo, seed_base)
        hi = self._mean_throughput(platform3, sigma_hi, seed_base)
        # Tolerance: two duty-cycle quanta (one step of one core changing
        # level over the measurement window) — the resolution limit of
        # throughput on a discrete ladder.
        ladder = platform3.ladder
        measured = self.HORIZON / 2
        quantum = (
            (ladder.v_max - ladder.v_min)
            * SENSOR_PERIOD
            / (platform3.n_cores * measured)
        )
        assert hi <= lo + 2 * quantum
