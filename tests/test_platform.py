"""Tests for the Platform bundle and its factory."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.platform import Platform, paper_platform
from repro.power.dvfs import VoltageLadder


class TestFactory:
    @pytest.mark.parametrize("n", [2, 3, 6, 9])
    def test_core_counts(self, n):
        p = paper_platform(n)
        assert p.n_cores == n

    def test_default_is_single_layer(self):
        p = paper_platform(3)
        assert p.model.n_nodes == 3

    def test_stacked_topology(self):
        p = paper_platform(3, topology="stacked")
        assert p.model.n_nodes == 2 * 3 + 1

    def test_unknown_topology(self):
        with pytest.raises(ConfigurationError):
            paper_platform(3, topology="weird")

    def test_theta_max(self):
        p = paper_platform(3, t_max_c=65.0, t_ambient_c=35.0)
        assert p.theta_max == pytest.approx(30.0)

    def test_custom_ladder(self):
        lad = VoltageLadder((0.7, 0.9, 1.1))
        p = paper_platform(3, ladder=lad)
        assert p.ladder is lad


class TestValidation:
    def test_t_max_below_ambient_rejected(self):
        with pytest.raises(ConfigurationError):
            paper_platform(3, t_max_c=30.0, t_ambient_c=35.0)

    def test_ladder_outside_power_range_rejected(self):
        lad = VoltageLadder((0.5, 1.3))  # below power model's v_min
        with pytest.raises(ConfigurationError):
            paper_platform(3, ladder=lad)


class TestHelpers:
    def test_with_t_max(self):
        p = paper_platform(3, t_max_c=55.0)
        q = p.with_t_max(65.0)
        assert q.t_max_c == 65.0
        assert q.model is p.model  # shares the model (and its caches)

    def test_with_ladder(self):
        p = paper_platform(3, n_levels=2)
        q = p.with_ladder(VoltageLadder((0.6, 0.8, 1.3)))
        assert len(q.ladder) == 3
        assert q.t_max_c == p.t_max_c

    def test_feasible_constant(self):
        p = paper_platform(3, t_max_c=65.0)
        assert p.feasible_constant([0.6, 0.6, 0.6])
        assert not p.feasible_constant([1.3, 1.3, 1.3])

    def test_floorplan_accessor(self):
        p = paper_platform(6)
        assert p.floorplan.n_cores == 6
