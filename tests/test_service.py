"""Tests for the scheduling service core (:mod:`repro.service`).

The service contract under test:

* the content-addressed schedule cache keys on the platform's *physics*
  plus the full solver request — keys are stable across process
  restarts, any parameter or tolerance change invalidates, and the
  opt-in disk layer survives concurrent writers without torn documents;
* cached and coalesced results are **identical** to direct
  :func:`~repro.algorithms.registry.guarded_solve` calls (the
  acceptance bound is 1e-9; the deterministic fields match exactly),
  including rejected-certificate / crash fallback paths;
* session-shared engines attribute per-request stats without double
  counting, and the engine LRU stays bounded;
* every result leaving the server carries an accepted
  :class:`~repro.safety.certificate.SafetyCertificate` or an explicit
  fallback record, and ``repro stats`` surfaces the serve session.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.algorithms.registry import get_solver, guarded_solve
from repro.api import evaluate as api_evaluate, load_platform
from repro.engine import ThermalEngine
from repro.errors import InfeasibleError, SolverError
from repro.platform import paper_platform
from repro.power.heterogeneous import big_little_power_model
from repro.schedule.serialization import (
    result_to_dict,
    schedule_to_dict,
)
from repro.service import (
    RequestCoalescer,
    ScheduleCache,
    ScheduleServer,
    SchedulerSession,
    cache_enabled,
    platform_hash,
    reset_default_session,
    schedule_cache_key,
    send_requests,
)

SRC_DIR = Path(__file__).resolve().parents[1] / "src"

SPEC2 = {"n_cores": 2, "n_levels": 2, "t_max_c": 65.0}
SPEC3 = {"n_cores": 3, "n_levels": 2, "t_max_c": 65.0}


def _deterministic(doc: dict) -> dict:
    """The timing-free fields of a result document (bitwise comparable)."""
    return {
        "name": doc["name"],
        "throughput": doc["throughput"],
        "peak_theta": doc["peak_theta"],
        "feasible": doc["feasible"],
        "schedule": doc["schedule"],
        "certificate": doc["certificate"],
        "fallback": (doc.get("details") or {}).get("fallback"),
    }


def _direct_solve_doc(spec_dict: dict, solver: str, params: dict) -> dict:
    """Reference: guarded_solve on a fresh engine, as a wire document."""
    engine = ThermalEngine(load_platform(spec_dict))
    result = guarded_solve(get_solver(solver), engine, **params)
    return result_to_dict(result)


@pytest.fixture()
def session() -> SchedulerSession:
    """A fresh session with a memory-only cache (no disk, no globals)."""
    return SchedulerSession(cache=ScheduleCache(directory=None))


@pytest.fixture(autouse=True)
def _isolated_default_session():
    """Tests here must not leak warm default-session state across tests."""
    reset_default_session()
    yield
    reset_default_session()


class TestPlatformHash:
    def test_same_content_same_hash(self):
        a = platform_hash(load_platform(SPEC2))
        b = platform_hash(load_platform(dict(SPEC2)))
        assert a == b and len(a) == 32

    def test_physics_changes_hash(self):
        base = platform_hash(load_platform(SPEC2))
        assert platform_hash(load_platform(dict(SPEC2, t_max_c=55.0))) != base
        assert platform_hash(load_platform(dict(SPEC2, n_cores=3))) != base
        assert platform_hash(load_platform(dict(SPEC2, tau=1e-5))) != base

    def test_big_little_never_collides_with_homogeneous(self):
        base = paper_platform(2, n_levels=2, t_max_c=65.0)
        hetero = paper_platform(
            2, n_levels=2, t_max_c=65.0,
            power=big_little_power_model(big_cores=[0], n_cores=2),
        )
        assert platform_hash(base) != platform_hash(hetero)


class TestScheduleCacheKey:
    def test_any_param_change_invalidates(self):
        phash = platform_hash(load_platform(SPEC2))
        base = schedule_cache_key(phash, "AO", {"m_cap": 8}, 0.05)
        assert schedule_cache_key(phash, "AO", {"m_cap": 16}, 0.05) != base
        assert schedule_cache_key(phash, "AO", {"m_cap": 8}, 0.01) != base
        assert schedule_cache_key(phash, "AO", {"m_cap": 8}, None) != base
        assert schedule_cache_key(phash, "PCO", {"m_cap": 8}, 0.05) != base

    def test_param_spelling_is_canonicalized(self):
        phash = platform_hash(load_platform(SPEC2))
        a = schedule_cache_key(phash, "AO", {"shift_grid": (4, 8)}, None)
        b = schedule_cache_key(phash, "AO", {"shift_grid": [4, 8]}, None)
        assert a == b

    def test_margin_policy_in_key(self):
        """``"shrink"`` results must not collide with plain solves, while
        the no-op spellings (None / "off") keep their pre-policy keys —
        existing on-disk caches stay valid."""
        phash = platform_hash(load_platform(SPEC2))
        base = schedule_cache_key(phash, "AO", {"m_cap": 8}, 0.05)
        off = schedule_cache_key(
            phash, "AO", {"m_cap": 8}, 0.05, margin_policy="off"
        )
        none = schedule_cache_key(
            phash, "AO", {"m_cap": 8}, 0.05, margin_policy=None
        )
        shrink = schedule_cache_key(
            phash, "AO", {"m_cap": 8}, 0.05, margin_policy="shrink"
        )
        assert base == off == none
        assert shrink != base

    def test_key_stable_across_process_restart(self):
        """The on-disk layer is only sound if a new process derives the
        same keys — sha256 over canonical JSON, no per-process salt."""
        spec_json = json.dumps(SPEC2)
        code = (
            "import json, sys\n"
            "from repro.api import load_platform\n"
            "from repro.service import platform_hash, schedule_cache_key\n"
            f"spec = json.loads({spec_json!r})\n"
            "phash = platform_hash(load_platform(spec))\n"
            "print(phash)\n"
            "print(schedule_cache_key(phash, 'AO', {'m_cap': 8}, 0.05))\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env={"PYTHONPATH": str(SRC_DIR), "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
        phash_line, key_line = proc.stdout.split()
        phash = platform_hash(load_platform(SPEC2))
        assert phash_line == phash
        assert key_line == schedule_cache_key(phash, "AO", {"m_cap": 8}, 0.05)


class TestScheduleCache:
    DOC = {"status": "ok", "result": None, "detail": "d"}

    def test_memory_roundtrip_and_counters(self):
        cache = ScheduleCache(directory=None)
        assert cache.get("k" * 32) is None
        cache.put("k" * 32, dict(self.DOC))
        assert cache.get("k" * 32) == self.DOC
        stats = cache.stats()
        assert stats["memory_hits"] == 1 and stats["misses"] == 1
        assert stats["writes"] == 1 and stats["directory"] is None

    def test_memory_lru_bound(self):
        cache = ScheduleCache(directory=None, memory_size=2)
        for i in range(4):
            cache.put(f"key{i}", dict(self.DOC, detail=str(i)))
        assert len(cache) == 2
        assert cache.get("key0") is None and cache.get("key3") is not None

    def test_disk_roundtrip_across_instances(self, tmp_path):
        first = ScheduleCache(directory=tmp_path)
        first.put("a" * 32, dict(self.DOC))
        second = ScheduleCache(directory=tmp_path)
        assert second.get("a" * 32) == self.DOC
        assert second.stats()["disk_hits"] == 1
        # Promoted to memory: the next hit never touches the disk.
        assert second.get("a" * 32) == self.DOC
        assert second.stats()["memory_hits"] == 1

    def test_foreign_or_torn_documents_degrade_to_miss(self, tmp_path):
        cache = ScheduleCache(directory=tmp_path)
        (tmp_path / ("b" * 32 + ".json")).write_text("{torn")
        assert cache.get("b" * 32) is None
        (tmp_path / ("c" * 32 + ".json")).write_text(
            json.dumps({"format": 999, "key": "c" * 32, "outcome": self.DOC})
        )
        assert cache.get("c" * 32) is None
        (tmp_path / ("d" * 32 + ".json")).write_text(
            json.dumps({"format": 1, "key": "WRONG", "outcome": self.DOC})
        )
        assert cache.get("d" * 32) is None

    def test_concurrent_writers_never_tear(self, tmp_path):
        """Many writers on one key: the winner's document is intact."""
        key = "e" * 32
        docs = [dict(self.DOC, detail=f"writer-{i}") for i in range(64)]

        def write(doc):
            ScheduleCache(directory=tmp_path).put(key, doc)

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(write, docs))
        final = ScheduleCache(directory=tmp_path).get(key)
        assert final in docs
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULE_CACHE", "0")
        assert not cache_enabled()
        monkeypatch.delenv("REPRO_SCHEDULE_CACHE")
        assert cache_enabled()


class TestSession:
    def test_solve_matches_direct_guarded_solve(self, session):
        outcome = session.solve(SPEC2, "AO", {"m_cap": 8})
        direct = _direct_solve_doc(SPEC2, "AO", {"m_cap": 8})
        assert outcome.status == "ok" and not outcome.cached
        assert _deterministic(result_to_dict(outcome.result)) == _deterministic(direct)
        assert outcome.certificate is not None and outcome.certificate.accepted

    def test_repeat_request_is_served_from_cache_bitwise(self, session):
        first = session.solve(SPEC2, "AO", {"m_cap": 8})
        second = session.solve(SPEC2, "AO", {"m_cap": 8})
        assert second.cached and not first.cached
        assert second.cache_key == first.cache_key
        # The cached outcome rebuilds from the stored wire document —
        # JSON float64 round-trips are exact, so this is bitwise.
        assert result_to_dict(second.result) == result_to_dict(first.result)
        assert second.stats is None  # no thermal work ran
        assert session.cache_hits == 1

    def test_param_change_misses_the_cache(self, session):
        session.solve(SPEC2, "AO", {"m_cap": 8})
        other = session.solve(SPEC2, "AO", {"m_cap": 16})
        assert not other.cached and session.cache_hits == 0

    def test_infeasible_is_an_answer_and_is_cached(self, session):
        spec = dict(SPEC3, t_max_c=37.0)
        first = session.solve(spec, "EXS", {})
        second = session.solve(spec, "EXS", {})
        assert first.status == "infeasible" and first.result is None
        assert second.status == "infeasible" and second.cached
        assert second.detail == first.detail

    def test_unknown_param_raises_before_the_guarded_path(self, session):
        with pytest.raises(SolverError, match="does not accept"):
            session.solve(SPEC2, "EXS", {"m_cap": 8})
        # A malformed request is not a solver failure: nothing was
        # counted, nothing was cached.
        assert session.solve_requests == 0 and len(session.cache) == 0

    def test_engine_lru_is_bounded(self):
        session = SchedulerSession(
            max_engines=2, cache=ScheduleCache(directory=None)
        )
        for n in (2, 3, 6):
            session.engine_for({"n_cores": n, "n_levels": 2, "t_max_c": 65.0})
        assert session.n_engines == 2
        assert session.engines_built == 3 and session.engines_evicted == 1

    def test_engines_are_shared_by_content(self, session):
        a = session.engine_for(SPEC2)
        b = session.engine_for(dict(SPEC2))
        c = session.engine_for(load_platform(SPEC2))
        assert a is b is c

    def test_shared_engine_stats_never_double_count(self, session):
        """Satellite: per-request ``stats_since`` checkpointing — the sum
        of per-request stats equals the engine's total work."""
        outcomes = [
            session.solve(SPEC2, "AO", {"m_cap": 8}, use_cache=False),
            session.solve(SPEC2, "AO", {"m_cap": 16}, use_cache=False),
            session.solve(SPEC2, "PCO", {"m_cap": 8}, use_cache=False),
        ]
        engine = session.engine_for(SPEC2)
        total = engine.stats()
        for field in (
            "steady_state_solves",
            "steady_state_cache_hits",
            "peak_evals",
            "eigen_cache_hits",
            "eigen_cache_misses",
        ):
            per_request = sum(getattr(o.stats, field) for o in outcomes)
            assert per_request == getattr(total, field), field

    def test_cached_solve_does_zero_thermal_work(self, session):
        session.solve(SPEC2, "AO", {"m_cap": 8})
        engine = session.engine_for(SPEC2)
        mark = engine.checkpoint()
        session.solve(SPEC2, "AO", {"m_cap": 8})
        since = engine.stats_since(mark)
        assert since.peak_evals == 0 and since.steady_state_solves == 0

    def test_cache_disabled_by_env(self, session, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULE_CACHE", "0")
        session.solve(SPEC2, "AO", {"m_cap": 8})
        again = session.solve(SPEC2, "AO", {"m_cap": 8})
        assert not again.cached and session.cache_hits == 0
        assert len(session.cache) == 0

    def test_fallback_outcome_survives_the_cache(self, session):
        """A degraded solve caches its fallback record and certificate."""

        def raiser(*_a, **_k):
            raise SolverError("injected crash for the service test")

        crashing = dataclasses.replace(get_solver("AO"), func=raiser)
        first = session.solve(SPEC2, crashing, {"m_cap": 8})
        second = session.solve(SPEC2, crashing, {"m_cap": 8})
        direct = guarded_solve(
            dataclasses.replace(get_solver("AO"), func=raiser),
            ThermalEngine(load_platform(SPEC2)),
            m_cap=8,
        )
        assert second.cached
        for outcome in (first, second):
            fallback = outcome.result.details["fallback"]
            assert fallback["requested"] == "AO"
            assert fallback == direct.details["fallback"]
            assert outcome.certificate.accepted
        assert _deterministic(result_to_dict(second.result)) == _deterministic(
            result_to_dict(direct)
        )

    def test_evaluate_many_matches_scalar_evaluate(self, session):
        schedules = [
            session.solve(spec, "AO", {"m_cap": 8}).result.schedule
            for spec in (SPEC2, SPEC3)
        ]
        batched = session.evaluate_many(
            list(zip((SPEC2, SPEC3), schedules))
        )
        for spec, schedule, ev in zip((SPEC2, SPEC3), schedules, batched):
            scalar = api_evaluate(ThermalEngine(load_platform(spec)), schedule)
            assert ev.peak_theta == pytest.approx(scalar.peak_theta, abs=1e-9)
            assert ev.feasible == scalar.feasible
            assert ev.throughput == scalar.throughput

    def test_certify_many_mixed_platforms(self, session):
        results = [
            session.solve(spec, "AO", {"m_cap": 8}).result
            for spec in (SPEC2, SPEC3)
        ]
        certs = session.certify_many(
            [
                (spec, r.schedule, {"claimed_peak": r.peak_theta})
                for spec, r in zip((SPEC2, SPEC3), results)
            ]
        )
        assert all(c.accepted for c in certs)


class TestHeterogeneousCertificates:
    """Satellite: the cross-route certificate check covers big.LITTLE."""

    def _hetero_engine(self, n_cores=2):
        return ThermalEngine(
            paper_platform(
                n_cores, n_levels=2, t_max_c=65.0,
                power=big_little_power_model(
                    big_cores=list(range(max(1, n_cores // 2))),
                    n_cores=n_cores,
                ),
            )
        )

    def test_guarded_solve_certifies_big_little(self):
        engine = self._hetero_engine()
        result = guarded_solve(get_solver("AO"), engine, m_cap=8)
        cert = result.certificate
        assert cert is not None and cert.accepted and cert.independent
        assert len(cert.method_peaks) >= 2

    def test_session_serves_big_little(self, session):
        platform = paper_platform(
            2, n_levels=2, t_max_c=65.0,
            power=big_little_power_model(big_cores=[0], n_cores=2),
        )
        outcome = session.solve(platform, "AO", {"m_cap": 8})
        assert outcome.status == "ok" and outcome.certificate.accepted
        again = session.solve(platform, "AO", {"m_cap": 8})
        assert again.cached

    def test_cli_certify_big_little_grid(self, capsys):
        from repro.cli import main

        code = main([
            "certify", "AO", "--quick",
            "-o", "core_counts=2",
            "-o", "t_max_values=65",
            "-o", "platforms=paper,big_little",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "[big_little]" in out
        assert "rejected" in out and " 0 rejected" in out

    def test_cli_certify_rejects_unknown_flavor(self, capsys):
        from repro.cli import main

        assert main(["certify", "AO", "-o", "platforms=vulcan"]) == 2
        assert "unknown platform flavor" in capsys.readouterr().err


class TestCoalescer:
    def _solve_request(self, spec=SPEC2, solver="AO", m_cap=8):
        return {
            "op": "solve",
            "platform": dict(spec),
            "solver": solver,
            "params": {"m_cap": m_cap},
        }

    def test_concurrent_identical_requests_coalesce_bitwise(self, session):
        coalescer = RequestCoalescer(session)

        async def run():
            return await asyncio.gather(
                *(coalescer.submit(self._solve_request()) for _ in range(5))
            )

        responses = asyncio.run(run())
        direct = _direct_solve_doc(SPEC2, "AO", {"m_cap": 8})
        assert all(r["ok"] for r in responses)
        assert [r["coalesced"] for r in responses] == [5] * 5
        assert coalescer.coalesced_batches == 1
        assert coalescer.coalesced_requests == 5
        # One solve ran; every response carries the identical document.
        assert session.solve_requests == 1
        docs = [_deterministic(r["result"]) for r in responses]
        assert all(doc == _deterministic(direct) for doc in docs)

    def test_concurrent_equals_sequential_for_distinct_requests(self, session):
        requests = [
            self._solve_request(SPEC2, "AO", 8),
            self._solve_request(SPEC2, "AO", 16),
            self._solve_request(SPEC3, "LNS", 8),
        ]
        requests[2]["params"] = {}

        async def run():
            return await asyncio.gather(
                *(coalescer.submit(r) for r in requests)
            )

        coalescer = RequestCoalescer(session)
        responses = asyncio.run(run())
        for request, response in zip(requests, responses):
            direct = _direct_solve_doc(
                request["platform"], request["solver"], request["params"]
            )
            assert response["ok"], response
            assert _deterministic(response["result"]) == _deterministic(direct)

    def test_rejected_certificate_fallback_parity(self, session, monkeypatch):
        """Satellite: the coalesced path and the direct path degrade to
        the *same* certified fallback when a solver lies."""
        import repro.algorithms.registry as registry

        honest = get_solver("AO")

        def liar(engine, **params):
            r = honest.func(engine, **params)
            return dataclasses.replace(r, peak_theta=r.peak_theta - 5.0)

        lying = dataclasses.replace(honest, func=liar)
        monkeypatch.setitem(registry.SOLVERS, "AO", lying)
        coalescer = RequestCoalescer(session)

        async def run():
            return await asyncio.gather(
                *(coalescer.submit(self._solve_request(m_cap=16)) for _ in range(3))
            )

        responses = asyncio.run(run())
        direct = guarded_solve(
            lying, ThermalEngine(load_platform(SPEC2)), m_cap=16
        )
        assert direct.details["fallback"]["failure"].startswith(
            "certificate rejected"
        )
        for response in responses:
            assert response["ok"] and response["coalesced"] == 3
            doc = response["result"]
            assert doc["details"]["fallback"] == direct.details["fallback"]
            assert _deterministic(doc) == _deterministic(result_to_dict(direct))
            assert response["certificate"]["accepted"]

    def test_evaluate_requests_share_one_grid_call(self, session):
        result = session.solve(SPEC2, "AO", {"m_cap": 8}).result
        schedule_doc = schedule_to_dict(result.schedule)
        coalescer = RequestCoalescer(session)
        request = {
            "op": "evaluate",
            "platform": dict(SPEC2),
            "schedule": schedule_doc,
        }

        async def run():
            return await asyncio.gather(
                *(coalescer.submit(dict(request)) for _ in range(4))
            )

        responses = asyncio.run(run())
        scalar = api_evaluate(
            ThermalEngine(load_platform(SPEC2)), result.schedule
        )
        assert all(r["ok"] and r["coalesced"] == 4 for r in responses)
        for r in responses:
            assert r["evaluation"]["peak_theta"] == pytest.approx(
                scalar.peak_theta, abs=1e-9
            )
            assert r["evaluation"]["feasible"] == scalar.feasible

    def test_unknown_op_and_bad_request_get_error_docs(self, session):
        coalescer = RequestCoalescer(session)

        async def run():
            return await asyncio.gather(
                coalescer.submit({"op": "transmogrify"}),
                coalescer.submit({"op": "solve", "solver": "nope"}),
                coalescer.submit(self._solve_request()),
            )

        bad_op, bad_solver, good = asyncio.run(run())
        assert not bad_op["ok"] and "unknown op" in bad_op["error"]["message"]
        assert not bad_solver["ok"]
        assert good["ok"]


class TestServer:
    def _requests(self, schedule_doc, claims):
        solves = [
            {
                "op": "solve",
                "platform": dict(SPEC2),
                "solver": "AO",
                "params": {"m_cap": 8},
            }
            for _ in range(4)
        ]
        return solves + [
            {"op": "solve", "platform": dict(SPEC2), "solver": "LNS"},
            {
                "op": "evaluate",
                "platform": dict(SPEC2),
                "schedule": schedule_doc,
            },
            {
                "op": "certify",
                "platform": dict(SPEC2),
                "schedule": schedule_doc,
                "claims": claims,
            },
            {"op": "ping"},
        ]

    def test_end_to_end_mixed_ops_with_journal(self, tmp_path, session):
        seed = session.solve(SPEC2, "AO", {"m_cap": 8})
        schedule_doc = schedule_to_dict(seed.result.schedule)
        claims = {"claimed_peak": seed.result.peak_theta}
        run_dir = tmp_path / "serve"

        async def scenario():
            server = ScheduleServer(run_dir=run_dir)
            host, port = await server.start()
            serve_task = asyncio.ensure_future(server.serve_until_shutdown())
            work = await send_requests(
                host, port, self._requests(schedule_doc, claims)
            )
            stats = (await send_requests(host, port, [{"op": "stats"}]))[0]
            await send_requests(host, port, [{"op": "shutdown"}])
            await serve_task
            return work, stats

        work, stats = asyncio.run(scenario())
        assert all(r["ok"] for r in work)

        solves = [r for r in work if r.get("op") == "solve"]
        assert len(solves) == 5
        # Every served solve carries an accepted certificate or an
        # explicit fallback record — never a bare uncertified result.
        for r in solves:
            cert = r.get("certificate")
            fallback = (r["result"].get("details") or {}).get("fallback")
            assert (cert and cert["accepted"]) or fallback is not None
        identical = [r for r in solves if r["coalesced"] == 4]
        assert len(identical) == 4
        assert len({json.dumps(r["result"], sort_keys=True) for r in identical}) == 1

        certifies = [r for r in work if r.get("op") == "certify"]
        assert certifies and all(r["accepted"] for r in certifies)

        coalescer_stats = stats["stats"]["coalescer"]
        assert coalescer_stats["coalesced_batches"] >= 1
        assert coalescer_stats["largest_batch"] >= 4
        assert stats["stats"]["served"] >= len(work)

        # The journal makes the serve session a first-class citizen of
        # ``repro stats``.
        from repro.obs import run_dir_summary

        summary = run_dir_summary(run_dir)
        assert summary.service is not None
        assert summary.status_counts.get("ok", 0) == 7  # work ops only
        text = summary.format()
        assert "service:" in text and "coalescing:" in text
        assert "largest batch" in text

    def test_malformed_lines_get_error_responses(self):
        async def scenario():
            server = ScheduleServer()
            host, port = await server.start()
            serve_task = asyncio.ensure_future(server.serve_until_shutdown())
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"this is not json\n")
            await writer.drain()
            line = await reader.readline()
            writer.close()
            await writer.wait_closed()
            await send_requests(host, port, [{"op": "shutdown"}])
            await serve_task
            return json.loads(line), server

        response, server = asyncio.run(scenario())
        assert not response["ok"]
        assert response["error"]["type"] == "JSONDecodeError"
        assert server.failed >= 1


class TestDefaultSessionWiring:
    def test_api_evaluate_uses_the_shared_engine(self):
        from repro.service.session import default_session

        schedule = default_session().solve(
            SPEC2, "AO", {"m_cap": 8}
        ).result.schedule
        engine = default_session().engine_for(SPEC2)
        mark = engine.checkpoint()
        api_evaluate(load_platform(SPEC2), schedule)
        # The evaluation ran on the session's engine, not a fresh one.
        assert engine.stats_since(mark).peak_evals == 1

    def test_cli_solve_serves_from_disk_cache(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_SCHEDULE_CACHE_DIR", str(tmp_path))
        reset_default_session()
        argv = ["solve", "AO", "-o", "n_cores=2", "-o", "m_cap=8"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "engine stats:" in first
        # A fresh session (new process in real life) hits the disk layer.
        reset_default_session()
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "[served from schedule cache" in second
        first_summary = first.splitlines()[0]
        assert second.splitlines()[0] == first_summary
