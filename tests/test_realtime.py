"""Unit and golden-trace tests for ``repro.realtime``.

Covers the workload model, the k-fault-tolerant placement (margin vs
blind), fault-injected recovery through the closed loop, the
``realtime_cell`` work-unit executor, and the two committed golden
scenarios (paper3 + big.LITTLE) pinned to 1e-9.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.errors import ConfigurationError, InfeasibleError
from repro.platform import paper_platform
from repro.power.heterogeneous import big_little_power_model
from repro.realtime import (
    FrameWorkload,
    RTTask,
    overload_factor,
    plan_frames,
    simulate_recovery,
    snap_failures,
)
from repro.realtime.scheduler import (
    COND_FULL_OVERLOAD,
    COND_NO_OVERLOAD,
)
from repro.safety.faults import CoreFailure, FaultSpec

GOLDEN = Path(__file__).resolve().parent / "data" / "golden_realtime.json"
PIN = 1e-9


@pytest.fixture(scope="module")
def platform4():
    """3 cores, 4 ladder levels, the tight-threshold regime."""
    return paper_platform(3, n_levels=4, t_max_c=60.0)


@pytest.fixture(scope="module")
def workload():
    return FrameWorkload.random(
        6, 0.9, 0.02, rng=11, max_task_utilization=0.5
    )


# ----------------------------------------------------------------------
# workload model
# ----------------------------------------------------------------------


class TestFrameWorkload:
    def test_random_hits_requested_utilization(self, rng):
        wl = FrameWorkload.random(8, 1.5, 0.02, rng=rng)
        assert wl.utilization_at(1.0) == pytest.approx(1.5)
        assert wl.n_tasks == 8

    def test_random_respects_per_task_cap(self, rng):
        wl = FrameWorkload.random(
            6, 2.0, 0.02, rng=rng, max_task_utilization=0.5
        )
        for task in wl.tasks:
            assert task.wcet_at(1.0) / wl.frame_s <= 0.5 + 1e-12

    def test_criticalities_are_a_total_order(self, rng):
        wl = FrameWorkload.random(7, 1.0, 0.02, rng=rng)
        assert sorted(t.criticality for t in wl.tasks) == list(range(7))

    def test_shed_order_lowest_criticality_first(self):
        wl = FrameWorkload(
            frame_s=0.02,
            tasks=(
                RTTask("a", 0.001, criticality=2),
                RTTask("b", 0.001, criticality=0),
                RTTask("c", 0.001, criticality=1),
            ),
        )
        assert [t.name for t in wl.shed_order()] == ["b", "c", "a"]

    def test_round_trip(self, workload):
        assert FrameWorkload.from_dict(workload.as_dict()) == workload

    def test_wcet_scales_inversely_with_speed(self):
        task = RTTask("t", wcec=0.01)
        assert task.wcet_at(0.5) == pytest.approx(2 * task.wcet_at(1.0))

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            FrameWorkload(
                frame_s=0.02, tasks=(RTTask("x", 1.0), RTTask("x", 2.0))
            )

    def test_same_seed_same_workload(self):
        a = FrameWorkload.random(5, 1.0, 0.02, rng=42)
        b = FrameWorkload.random(5, 1.0, 0.02, rng=42)
        assert a == b


# ----------------------------------------------------------------------
# fault-spec extensions
# ----------------------------------------------------------------------


class TestCoreFailure:
    def test_permanent_active_from_onset(self):
        f = CoreFailure(core=0, at_fraction=0.5)
        assert not f.active_at(0.4)
        assert f.active_at(0.5)
        assert f.active_at(1.0)

    def test_transient_window(self):
        f = CoreFailure(
            core=1, at_fraction=0.3, kind="transient", duration_fraction=0.2
        )
        assert not f.active_at(0.2)
        assert f.active_at(0.3)
        assert f.active_at(0.49)
        assert not f.active_at(0.5)

    def test_round_trip(self):
        f = CoreFailure(
            core=2, at_fraction=0.25, kind="transient", duration_fraction=0.5
        )
        assert CoreFailure.from_dict(f.as_dict()) == f

    def test_fault_spec_carries_failures(self):
        spec = FaultSpec(
            core_failures=(
                CoreFailure(core=0, at_fraction=0.0),
                CoreFailure(
                    core=1, at_fraction=0.5, kind="transient",
                    duration_fraction=0.1,
                ),
            )
        )
        assert spec.failed_cores_at(0.0) == frozenset({0})
        assert spec.failed_cores_at(0.55) == frozenset({0, 1})
        assert spec.failed_cores_at(0.7) == frozenset({0})
        assert spec.any_structural_fault
        round_tripped = FaultSpec.from_dict(spec.as_dict())
        assert round_tripped.core_failures == spec.core_failures

    def test_as_dict_is_fully_sampled(self):
        # Every field rides in the payload — nothing left to defaults.
        doc = FaultSpec(sensor_noise_sigma=0.5, seed=7).as_dict()
        for key in (
            "sensor_noise_sigma", "sensor_dropout_prob", "stuck_core",
            "ambient_drift_k", "core_failures", "tsv_derating",
            "layer_ambient_gradient_k", "seed",
        ):
            assert key in doc


# ----------------------------------------------------------------------
# scheduler
# ----------------------------------------------------------------------


class TestOverloadFactor:
    def test_full_overload_when_well_conditioned(self):
        assert overload_factor(1.0) == 1.0
        assert overload_factor(COND_FULL_OVERLOAD) == 1.0

    def test_no_overload_when_ill_conditioned(self):
        assert overload_factor(COND_NO_OVERLOAD) == 0.0
        assert overload_factor(1e9) == 0.0

    def test_monotone_in_between(self):
        conds = np.logspace(2, 6, 20)
        factors = [overload_factor(c) for c in conds]
        assert all(a >= b for a, b in zip(factors, factors[1:]))


class TestPlanFrames:
    def test_margin_placement_is_certified(self, platform4, workload):
        p = plan_frames(platform4, workload, k=1, policy="margin")
        assert p.certificate is not None
        assert p.certificate.accepted and p.certificate.feasible
        assert not p.shed

    def test_backup_chains_have_k_distinct_cores(self, platform4, workload):
        p = plan_frames(platform4, workload, k=2, policy="margin")
        for placed in p.placements:
            assert len(placed.backups) == 2
            chain = {placed.primary, *placed.backups}
            assert len(chain) == 3  # primary + k distinct backups

    def test_k_plus_one_exceeding_cores_is_infeasible(
        self, platform4, workload
    ):
        with pytest.raises(InfeasibleError):
            plan_frames(platform4, workload, k=3, policy="margin")

    def test_unknown_policy_rejected(self, platform4, workload):
        with pytest.raises(ConfigurationError):
            plan_frames(platform4, workload, k=1, policy="bogus")

    def test_blind_activates_at_top_level(self, platform4, workload):
        p = plan_frames(platform4, workload, k=1, policy="blind")
        top = len(platform4.ladder.levels) - 1
        assert all(lvl == top for lvl in p.activation_levels)

    def test_margin_activation_never_below_nominal(
        self, platform4, workload
    ):
        p = plan_frames(platform4, workload, k=1, policy="margin")
        for nominal, activation in zip(p.levels, p.activation_levels):
            assert activation >= nominal

    def test_primaries_fit_before_the_backup_window(
        self, platform4, workload
    ):
        p = plan_frames(platform4, workload, k=1, policy="margin")
        for core in range(p.n_cores):
            assert (
                p.primary_seconds(core)
                <= p.frame_s - p.backup_window_s + 1e-9
            )

    def test_margin_envelope_respects_threshold(self, platform4, workload):
        from repro.engine import ThermalEngine

        engine = ThermalEngine.ensure(platform4)
        p = plan_frames(platform4, workload, k=1, policy="margin")
        peak = engine.general_peak(p.envelope_schedule())
        assert peak.value <= engine.theta_max + 1e-6

    def test_blind_envelope_can_violate_threshold(self, platform4):
        # The divergence regime: blind admits what margin prices out.
        from repro.engine import ThermalEngine

        engine = ThermalEngine.ensure(platform4)
        wl = FrameWorkload.random(
            6, 1.2, 0.02, rng=104, max_task_utilization=0.5
        )
        p = plan_frames(platform4, wl, k=1, policy="blind")
        peak = engine.general_peak(p.envelope_schedule())
        assert peak.value > engine.theta_max

    def test_shedding_drops_lowest_criticality_first(self, platform4):
        wl = FrameWorkload.random(
            6, 2.4, 0.02, rng=11, max_task_utilization=0.6
        )
        p = plan_frames(platform4, wl, k=1, policy="margin")
        assert p.shed  # this utilization cannot fully fit
        crits = {t.name: t.criticality for t in wl.tasks}
        kept = [placed.task.name for placed in p.placements]
        # Every shed task has criticality below every kept task.
        assert max(crits[n] for n in p.shed) < min(crits[n] for n in kept)


# ----------------------------------------------------------------------
# recovery
# ----------------------------------------------------------------------


class TestSnapFailures:
    def test_snaps_up_to_frame_boundary(self):
        spec = FaultSpec(
            core_failures=(CoreFailure(core=0, at_fraction=0.26),)
        )
        snapped = snap_failures(spec, 4)
        assert snapped.core_failures[0].at_fraction == pytest.approx(0.5)

    def test_exact_boundary_stays(self):
        spec = FaultSpec(
            core_failures=(CoreFailure(core=0, at_fraction=0.5),)
        )
        snapped = snap_failures(spec, 4)
        assert snapped.core_failures[0].at_fraction == pytest.approx(0.5)

    def test_transient_duration_rounds_up_to_whole_frames(self):
        spec = FaultSpec(
            core_failures=(
                CoreFailure(
                    core=0, at_fraction=0.0, kind="transient",
                    duration_fraction=0.01,
                ),
            )
        )
        snapped = snap_failures(spec, 4)
        assert snapped.core_failures[0].duration_fraction == pytest.approx(
            0.25
        )


class TestSimulateRecovery:
    def test_single_failure_zero_misses(self, platform4, workload):
        p = plan_frames(platform4, workload, k=1, policy="margin")
        report = simulate_recovery(
            platform4, p,
            {"core_failures": [{"core": 0, "at_fraction": 0.4}]},
        )
        assert report.deadline_misses == 0
        assert report.safe
        assert report.activations  # backups actually ran

    def test_transient_failure_recovers_without_recertification(
        self, platform4, workload
    ):
        p = plan_frames(platform4, workload, k=1, policy="margin")
        report = simulate_recovery(
            platform4, p,
            {"core_failures": [{
                "core": 1, "at_fraction": 0.3, "kind": "transient",
                "duration_fraction": 0.2,
            }]},
        )
        assert report.deadline_misses == 0
        assert report.recertified is None  # nothing permanent to re-certify
        assert report.safe

    def test_permanent_failure_recertifies_degraded_placement(
        self, platform4, workload
    ):
        p = plan_frames(platform4, workload, k=1, policy="margin")
        report = simulate_recovery(
            platform4, p,
            {"core_failures": [{"core": 0, "at_fraction": 0.4}]},
        )
        assert report.recertified is not None
        assert report.recertified_ok

    def test_more_failures_than_k_can_miss(self, platform4, workload):
        p = plan_frames(platform4, workload, k=1, policy="margin")
        report = simulate_recovery(
            platform4, p,
            {"core_failures": [
                {"core": 0, "at_fraction": 0.3},
                {"core": 1, "at_fraction": 0.3},
            ]},
        )
        # Two failures against k=1: tasks with both copies dead miss.
        assert report.deadline_misses > 0
        assert not report.safe

    def test_failed_core_is_power_gated_in_trace(self, platform4, workload):
        p = plan_frames(platform4, workload, k=1, policy="margin")
        report = simulate_recovery(
            platform4, p,
            {"core_failures": [{"core": 0, "at_fraction": 0.5}]},
            n_frames=8, steps_per_frame=8,
        )
        # After the (snapped) failure at step 32, core 0's applied
        # voltage is 0; before it, the core runs.
        levels = np.asarray(report.trace.levels)
        assert np.all(levels[32:, 0] == 0.0)
        assert np.all(levels[:32, 0] > 0.0)

    def test_clean_run_is_safe_and_quiet(self, platform4, workload):
        p = plan_frames(platform4, workload, k=1, policy="margin")
        report = simulate_recovery(platform4, p, None)
        assert report.deadline_misses == 0
        assert report.activations == ()
        assert report.recertified is None
        assert report.safe

    def test_core_count_mismatch_rejected(self, platform4, workload):
        p = plan_frames(platform4, workload, k=1, policy="margin")
        other = paper_platform(2, n_levels=2, t_max_c=65.0)
        with pytest.raises(ConfigurationError):
            simulate_recovery(other, p, None)


# ----------------------------------------------------------------------
# the realtime_cell executor
# ----------------------------------------------------------------------


class TestRealtimeCellExecutor:
    def payload(self, workload, policy="margin"):
        return {
            "platform": {
                "family": "paper",
                "overrides": {
                    "n_cores": 3, "n_levels": 4, "t_max_c": 60.0,
                },
            },
            "policy": policy,
            "k": 1,
            "workload": workload.as_dict(),
            "faults": FaultSpec(
                core_failures=(CoreFailure(core=0, at_fraction=0.4),)
            ).as_dict(),
            "n_frames": 4,
            "steps_per_frame": 4,
        }

    def test_executes_and_reports_schedulable(self, workload):
        from repro.runner.units import execute_unit

        doc = {
            "kind": "realtime_cell",
            "payload": self.payload(workload),
            "label": "t",
        }
        outcome = execute_unit(doc)
        assert outcome["status"] == "ok"
        assert outcome["result"]["schedulable"] is True
        assert outcome["result"]["recovery"]["deadline_misses"] == 0

    def test_replay_is_bitwise_identical(self, workload):
        from repro.runner.units import realtime_cell_outcome

        payload = self.payload(workload)
        a = realtime_cell_outcome(payload)
        b = realtime_cell_outcome(payload)
        a.pop("spans"), b.pop("spans")  # span timings are wall-clock
        a["stats"] = b["stats"] = None  # engine cache state differs
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_infeasible_is_an_outcome_not_a_crash(self):
        from repro.runner.units import realtime_cell_outcome

        heavy = FrameWorkload(
            frame_s=0.02,
            tasks=(RTTask("big", wcec=0.2, criticality=0),),
        )
        payload = self.payload(heavy)
        outcome = realtime_cell_outcome(payload)
        assert outcome["status"] == "infeasible"
        assert outcome["result"] is None


# ----------------------------------------------------------------------
# the experiment
# ----------------------------------------------------------------------


class TestRealtimeExperiment:
    def test_quick_preset_runs_and_finds_the_gap(self):
        from repro.experiments.registry import run_experiment

        result = run_experiment("realtime", quick=True)
        assert result.rows
        assert result.headline()["experiment"] == "realtime"
        assert "schedulability" in result.format()

    def test_headline_is_reproducible(self):
        from repro.experiments.realtime import realtime_experiment

        kwargs = dict(
            k_values=(1,), intensities=(1,), utilizations=(0.9,),
            n_sets=2, n_frames=4, steps_per_frame=4,
        )
        a = realtime_experiment(**kwargs).headline()
        b = realtime_experiment(**kwargs).headline()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_committed_results_match_regeneration(self):
        committed = Path(__file__).resolve().parents[1] / "results"
        doc = json.loads((committed / "realtime.json").read_text())
        assert doc["experiment"] == "realtime"
        assert doc["mean_schedulability_gap"] > 0
        for row in doc["rows"]:
            if row["intensity"] <= row["k"]:
                # The k-fault guarantee: margin placements stay safe.
                assert row["margin"]["safe"] == 1.0


# ----------------------------------------------------------------------
# golden scenarios
# ----------------------------------------------------------------------


def _golden_platform(case: str):
    if "paper3" in case:
        return paper_platform(3, n_levels=4, t_max_c=60.0)
    return paper_platform(
        6,
        n_levels=2,
        t_max_c=65.0,
        power=big_little_power_model(big_cores=[0, 1, 2], n_cores=6),
    )


GOLDEN_CASES = json.loads(GOLDEN.read_text())


@pytest.mark.parametrize(
    "doc", GOLDEN_CASES, ids=[c["case"] for c in GOLDEN_CASES]
)
def test_golden_realtime_replays(doc):
    platform = _golden_platform(doc["case"])
    workload = FrameWorkload.random(**doc["workload_kwargs"])
    placement = plan_frames(
        platform, workload, k=doc["k"], policy=doc["policy"]
    )
    assert placement.as_dict() == doc["placement"]
    report = simulate_recovery(
        platform, placement, {"core_failures": doc["failures"]},
        n_frames=8, steps_per_frame=8,
    )
    assert report.as_dict() == doc["recovery"]
    np.testing.assert_allclose(
        report.trace.times, np.asarray(doc["trace_times"]), atol=PIN, rtol=0
    )
    np.testing.assert_allclose(
        report.trace.levels, np.asarray(doc["trace_levels"]),
        atol=PIN, rtol=0,
    )
    assert report.trace.peak_theta == pytest.approx(
        doc["trace_peak_theta"], abs=PIN
    )


def test_golden_covers_both_platforms():
    cases = {c["case"] for c in GOLDEN_CASES}
    assert any("paper3" in c for c in cases)
    assert any("big_little" in c for c in cases)
