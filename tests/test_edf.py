"""Tests for the EDF-under-oscillation simulator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.schedule.builders import constant_schedule, two_mode_schedule
from repro.workload.edf import simulate_edf, supply_in_window
from repro.workload.tasks import PeriodicTask


class TestSupplyInWindow:
    def test_constant_speed(self):
        s = constant_schedule([0.9], period=0.01)
        assert supply_in_window(s, 0, 0.0, 0.05) == pytest.approx(0.045)

    def test_two_mode_average(self):
        s = two_mode_schedule([0.6], [1.3], [0.5], 0.01)
        # Over a whole number of periods the supply is the average speed.
        assert supply_in_window(s, 0, 0.0, 0.05) == pytest.approx(0.95 * 0.05)

    def test_window_inside_low_phase(self):
        s = two_mode_schedule([0.6], [1.3], [0.5], 0.01)
        # The low phase comes first (step-up): [0, 5ms) at 0.6.
        assert supply_in_window(s, 0, 0.0, 0.005) == pytest.approx(0.6 * 0.005)

    def test_wraps_periods(self):
        s = two_mode_schedule([0.6], [1.3], [0.5], 0.01)
        a = supply_in_window(s, 0, 0.0, 0.012)
        b = supply_in_window(s, 0, 0.01, 0.002)  # same phase alignment
        assert a == pytest.approx(0.95 * 0.01 + b)

    def test_negative_window_rejected(self):
        s = constant_schedule([0.9], period=0.01)
        with pytest.raises(ConfigurationError):
            supply_in_window(s, 0, 0.0, -1.0)


class TestSimulateEDF:
    def test_feasible_set_meets_deadlines(self):
        # Demand 0.8 on a core averaging 0.95 with a 1 ms cycle.
        s = two_mode_schedule([0.6], [1.3], [0.5], 0.001)
        tasks = [
            PeriodicTask("a", wcec=0.02, period_s=0.05),   # u = 0.4
            PeriodicTask("b", wcec=0.04, period_s=0.10),   # u = 0.4
        ]
        report = simulate_edf(s, 0, tasks)
        assert report.all_deadlines_met
        assert report.jobs_completed > 0

    def test_overload_misses_deadlines(self):
        s = constant_schedule([0.6], period=0.01)
        tasks = [PeriodicTask("hog", wcec=0.09, period_s=0.1)]  # u = 0.9 > 0.6
        report = simulate_edf(s, 0, tasks)
        assert not report.all_deadlines_met
        assert report.max_lateness_s > 0

    def test_slow_oscillation_can_miss(self):
        # Average speed 0.95 > demand 0.9, but the cycle (100 ms) is as long
        # as the task period: the job released into the low phase starves.
        s = two_mode_schedule([0.6], [1.3], [0.5], 0.1)
        tasks = [PeriodicTask("tight", wcec=0.045, period_s=0.05)]  # u = 0.9
        report = simulate_edf(s, 0, tasks, horizon_s=1.0)
        assert not report.all_deadlines_met

    def test_fast_oscillation_fixes_it(self):
        # Same demand, cycle pushed to 1 ms: the fluid approximation holds.
        s = two_mode_schedule([0.6], [1.3], [0.5], 0.001)
        tasks = [PeriodicTask("tight", wcec=0.045, period_s=0.05)]
        report = simulate_edf(s, 0, tasks, horizon_s=1.0)
        assert report.all_deadlines_met

    def test_empty_taskset(self):
        s = constant_schedule([0.9], period=0.01)
        report = simulate_edf(s, 0, [])
        assert report.jobs_released == 0
        assert report.all_deadlines_met

    def test_invalid_core(self):
        s = constant_schedule([0.9], period=0.01)
        with pytest.raises(ConfigurationError):
            simulate_edf(s, 3, [PeriodicTask("a", 0.01, 0.1)])

    def test_utilization_accounting(self):
        s = constant_schedule([1.0], period=0.01)
        tasks = [PeriodicTask("a", wcec=0.05, period_s=0.1)]
        report = simulate_edf(s, 0, tasks, horizon_s=1.0)
        assert report.jobs_released == 10
        assert report.jobs_completed == 10

    def test_end_to_end_with_workload_layer(self):
        # The full pipeline's emitted schedule really runs its tasks.
        from repro.platform import paper_platform
        from repro.workload import TaskSet, schedule_taskset

        p = paper_platform(3, n_levels=5, t_max_c=65.0)
        ts = TaskSet.random(6, total_utilization=2.0,
                            rng=np.random.default_rng(5),
                            period_range=(0.05, 0.2))
        result = schedule_taskset(p, ts, m_cap=64)
        assert result.thermally_feasible
        sched = result.minpeak.schedule
        for core in range(3):
            tasks = result.mapping.core_tasks(core)
            if not tasks:
                continue
            report = simulate_edf(sched, core, tasks)
            assert report.all_deadlines_met, (
                f"core {core} missed {len(report.deadline_misses)} deadlines"
            )
