"""Unit tests for RC network assembly (both topologies)."""

import numpy as np
import pytest

from repro.errors import ThermalModelError
from repro.floorplan.library import floorplan_2x1, floorplan_3x1, floorplan_3x3
from repro.thermal.params import RCParams, SingleLayerParams
from repro.thermal.rc import RCNetwork, build_rc_network, build_single_layer_network
from repro.util.linalg import is_positive_definite, is_symmetric


class TestSingleLayer:
    def test_node_count(self):
        net = build_single_layer_network(floorplan_3x1())
        assert net.n_nodes == 3
        assert net.n_cores == 3

    def test_symmetry_and_definiteness(self):
        net = build_single_layer_network(floorplan_3x3())
        assert is_symmetric(net.conductance)
        assert is_positive_definite(net.conductance)

    def test_boundary_conductance_on_diagonal(self):
        p = SingleLayerParams()
        net = build_single_layer_network(floorplan_3x1(), p)
        g = net.conductance
        # Edge core: 3 exposed edges + 1 lateral link.
        assert g[0, 0] == pytest.approx(p.g_direct + 3 * p.g_boundary + p.g_lateral)
        # Middle core: 2 exposed edges + 2 lateral links.
        assert g[1, 1] == pytest.approx(p.g_direct + 2 * p.g_boundary + 2 * p.g_lateral)

    def test_lateral_off_diagonals(self):
        p = SingleLayerParams()
        net = build_single_layer_network(floorplan_3x1(), p)
        g = net.conductance
        assert g[0, 1] == pytest.approx(-p.g_lateral)
        assert g[0, 2] == 0.0  # non-adjacent cores

    def test_capacitances_uniform(self):
        p = SingleLayerParams()
        net = build_single_layer_network(floorplan_2x1(), p)
        assert np.allclose(net.capacitance, p.c_core)

    def test_injection_matrix_identity(self):
        net = build_single_layer_network(floorplan_2x1())
        assert np.array_equal(net.injection_matrix(), np.eye(2))


class TestStacked:
    def test_node_count(self):
        net = build_rc_network(floorplan_3x1())
        assert net.n_nodes == 2 * 3 + 1  # cores + spreaders + sink
        assert net.n_cores == 3

    def test_symmetry_and_definiteness(self):
        net = build_rc_network(floorplan_3x3())
        assert is_symmetric(net.conductance)
        assert is_positive_definite(net.conductance)

    def test_row_sums_ground_only_at_sink(self):
        p = RCParams()
        net = build_rc_network(floorplan_2x1(), p)
        row_sums = net.conductance.sum(axis=1)
        # Only the sink row carries the ambient ground conductance.
        assert np.allclose(row_sums[:-1], 0.0, atol=1e-12)
        assert row_sums[-1] == pytest.approx(p.g_sink_ambient)

    def test_injection_matrix_targets_cores(self):
        net = build_rc_network(floorplan_2x1())
        sel = net.injection_matrix()
        assert sel.shape == (5, 2)
        assert np.array_equal(sel[:2], np.eye(2))
        assert np.all(sel[2:] == 0)

    def test_from_materials_sane(self):
        fp = floorplan_3x1()
        p = RCParams.from_materials(fp)
        assert p.g_vertical > 0
        assert p.c_core == pytest.approx(1.75e6 * 1.6e-5 * 1.5e-4)


class TestRCNetworkValidation:
    def test_rejects_asymmetric_g(self):
        fp = floorplan_2x1()
        g = np.array([[1.0, -0.5], [-0.4, 1.0]])
        with pytest.raises(ThermalModelError):
            RCNetwork(floorplan=fp, conductance=g, capacitance=np.ones(2),
                      core_nodes=np.arange(2))

    def test_rejects_ungrounded_network(self):
        fp = floorplan_2x1()
        # Pure Laplacian without ground: singular, not PD.
        g = np.array([[0.5, -0.5], [-0.5, 0.5]])
        with pytest.raises(ThermalModelError):
            RCNetwork(floorplan=fp, conductance=g, capacitance=np.ones(2),
                      core_nodes=np.arange(2))

    def test_rejects_nonpositive_capacitance(self):
        fp = floorplan_2x1()
        g = np.eye(2)
        with pytest.raises(ThermalModelError):
            RCNetwork(floorplan=fp, conductance=g,
                      capacitance=np.array([1.0, 0.0]), core_nodes=np.arange(2))

    def test_rejects_mismatched_capacitance(self):
        fp = floorplan_2x1()
        with pytest.raises(ThermalModelError):
            RCNetwork(floorplan=fp, conductance=np.eye(2),
                      capacitance=np.ones(3), core_nodes=np.arange(2))


class TestParams:
    @pytest.mark.parametrize("field,value", [
        ("g_direct", 0.0), ("g_direct", -1.0), ("c_core", 0.0),
        ("g_boundary", -0.1), ("g_lateral", -0.1),
    ])
    def test_single_layer_validation(self, field, value):
        with pytest.raises(ThermalModelError):
            SingleLayerParams(**{field: value})

    @pytest.mark.parametrize("field", ["g_vertical", "g_spreader_sink", "c_sink"])
    def test_stacked_validation(self, field):
        with pytest.raises(ThermalModelError):
            RCParams(**{field: 0.0})

    def test_scaled(self):
        p = SingleLayerParams()
        q = p.scaled(c_core=2.0, g_lateral=0.5)
        assert q.c_core == pytest.approx(2 * p.c_core)
        assert q.g_lateral == pytest.approx(0.5 * p.g_lateral)
        assert q.g_direct == p.g_direct

    def test_scaled_unknown_field(self):
        with pytest.raises(ThermalModelError):
            SingleLayerParams().scaled(bogus=1.0)
        with pytest.raises(ThermalModelError):
            RCParams().scaled(bogus=1.0)
