"""Batched stable-status/peak engine vs the scalar paths, to 1e-9."""

import numpy as np
import pytest

from repro.algorithms.continuous import continuous_assignment
from repro.algorithms.oscillation import choose_m, plan_modes
from repro.algorithms.tpt import enforce_threshold, fill_headroom
from repro.errors import ScheduleError, ThermalModelError
from repro.schedule.builders import (
    constant_schedule,
    random_schedule,
    random_stepup_schedule,
)
from repro.thermal.batch import (
    peak_temperature_batch,
    periodic_steady_state_batch,
    stepup_peak_temperature_batch,
)
from repro.thermal.peak import (
    peak_temperature,
    stepup_peak_temperature,
)
from repro.thermal.periodic import periodic_steady_state
from repro.util.linalg import EigenExpm

PARITY = 1e-9


def mixed_candidates(n_cores, rng, count=24):
    """Randomized candidate set: step-up and arbitrary, varying z."""
    scheds = []
    for i in range(count):
        segments = int(rng.integers(1, 6))
        if i % 2 == 0:
            s = random_stepup_schedule(
                n_cores, rng, max_segments=segments, period=0.02
            )
        else:
            s = random_schedule(n_cores, rng, max_segments=segments, period=0.02)
        scheds.append(s)
    return scheds


def wrap_distance(t_a: float, t_b: float, period: float) -> float:
    """Distance between two instants on the periodic circle.

    In stable status t = 0 and t = period are the same instant, so peak
    times are compared modulo the period.
    """
    d = abs(t_a - t_b) % period
    return min(d, period - d)


class TestSteadyStateBatch:
    def test_randomized_parity(self, model3, rng):
        scheds = mixed_candidates(3, rng)
        batch = periodic_steady_state_batch(model3, scheds)
        assert len(batch) == len(scheds)
        for s, b in zip(scheds, batch):
            scalar = periodic_steady_state(model3, s)
            assert b.schedule is s
            np.testing.assert_allclose(
                b.boundary_temperatures,
                scalar.boundary_temperatures,
                atol=PARITY,
                rtol=0,
            )

    def test_k1(self, model3, rng):
        s = random_schedule(3, rng, period=0.03)
        (b,) = periodic_steady_state_batch(model3, [s])
        scalar = periodic_steady_state(model3, s)
        np.testing.assert_allclose(
            b.boundary_temperatures, scalar.boundary_temperatures, atol=PARITY
        )

    def test_empty_batch(self, model3):
        assert periodic_steady_state_batch(model3, []) == []


class TestPeakBatch:
    def test_randomized_parity(self, model3, rng):
        scheds = mixed_candidates(3, rng)
        batch = peak_temperature_batch(model3, scheds)
        for s, b in zip(scheds, batch):
            scalar = peak_temperature(model3, s)
            assert b.value == pytest.approx(scalar.value, abs=PARITY)
            assert b.core == scalar.core
            assert wrap_distance(b.time, scalar.time, s.period) < PARITY
            np.testing.assert_allclose(
                b.core_peaks, scalar.core_peaks, atol=PARITY, rtol=0
            )

    def test_stepup_randomized_parity(self, model3, rng):
        scheds = [
            random_stepup_schedule(3, rng, max_segments=1 + i % 5, period=0.02)
            for i in range(20)
        ]
        batch = stepup_peak_temperature_batch(model3, scheds)
        for s, b in zip(scheds, batch):
            scalar = stepup_peak_temperature(model3, s)
            assert b.value == pytest.approx(scalar.value, abs=PARITY)
            assert b.core == scalar.core
            assert wrap_distance(b.time, scalar.time, s.period) < PARITY
            np.testing.assert_allclose(
                b.core_peaks, scalar.core_peaks, atol=PARITY, rtol=0
            )

    def test_k1(self, model3, rng):
        s = random_stepup_schedule(3, rng, period=0.02)
        (b,) = peak_temperature_batch(model3, [s])
        scalar = peak_temperature(model3, s)
        assert b.value == pytest.approx(scalar.value, abs=PARITY)
        np.testing.assert_allclose(b.core_peaks, scalar.core_peaks, atol=PARITY)

    def test_empty_batch(self, model3):
        assert peak_temperature_batch(model3, []) == []
        assert stepup_peak_temperature_batch(model3, []) == []

    def test_stepup_check_rejects_arbitrary(self, model3, rng):
        for _ in range(20):
            s = random_schedule(3, rng, period=0.02)
            from repro.schedule.properties import is_step_up

            if not is_step_up(s):
                break
        with pytest.raises(ScheduleError):
            stepup_peak_temperature_batch(model3, [s])

    def test_order_preserved_in_mixed_batch(self, model3, rng):
        # Step-up and general candidates go down different code paths but
        # must land back at their input positions.
        scheds = mixed_candidates(3, rng, count=10)
        batch = peak_temperature_batch(model3, scheds)
        for s, b in zip(scheds, batch):
            assert b.value == pytest.approx(
                peak_temperature(model3, s).value, abs=PARITY
            )

    def test_constant_schedules(self, model3):
        volts = [[0.6, 0.8, 1.0], [1.3, 1.3, 1.3], [1.0, 0.6, 1.2]]
        scheds = [constant_schedule(v, period=0.02) for v in volts]
        batch = peak_temperature_batch(model3, scheds)
        for v, b in zip(volts, batch):
            assert b.value == pytest.approx(
                model3.steady_state_cores(v).max(), abs=PARITY
            )


class TestApplyExpmMany:
    def test_matches_rowwise_apply(self, model3, rng):
        times = rng.uniform(0.0, 0.05, 8)
        x = rng.normal(size=(8, model3.n_nodes))
        out = model3.eigen.apply_expm_many(times, x)
        for j, t in enumerate(times):
            np.testing.assert_allclose(
                out[j], model3.eigen.apply_expm(float(t), x[j]), atol=1e-10
            )

    def test_scalar_broadcast(self, model3, rng):
        x = rng.normal(size=model3.n_nodes)
        out = model3.eigen.apply_expm_many(0.01, x)
        assert out.shape == (1, model3.n_nodes)
        np.testing.assert_allclose(
            out[0], model3.eigen.apply_expm(0.01, x), atol=1e-10
        )

    def test_shape_mismatch_raises(self, model3):
        with pytest.raises(ThermalModelError):
            model3.eigen.apply_expm_many(
                [0.1, 0.2], np.zeros((3, model3.n_nodes))
            )

    def test_negative_time_raises(self, model3):
        with pytest.raises(ValueError):
            model3.eigen.apply_expm_many([-0.1], np.zeros((1, model3.n_nodes)))


class TestExpmCache:
    def test_cached_matches_direct(self, model3):
        mat = model3.eigen.expm_cached(0.0123)
        np.testing.assert_array_equal(mat, model3.eigen.expm(0.0123))
        assert model3.eigen.expm_cached(0.0123) is mat  # hit, same object
        assert not mat.flags.writeable

    def test_lru_eviction(self, monkeypatch, model3):
        monkeypatch.setattr(EigenExpm, "EXPM_CACHE_SIZE", 3)
        eigen = EigenExpm(model3.eigen.a, c_diag=None)
        for t in (0.01, 0.02, 0.03):
            eigen.expm_cached(t)
        eigen.expm_cached(0.01)  # refresh: 0.02 is now the oldest
        eigen.expm_cached(0.04)  # evicts 0.02
        assert set(eigen._expm_cache) == {0.01, 0.03, 0.04}


class TestSteadyStateLRU:
    def test_eviction_keeps_recently_used(self, monkeypatch, model3):
        from repro.thermal.model import ThermalModel

        monkeypatch.setattr(ThermalModel, "SS_CACHE_SIZE", 3)
        model = ThermalModel(model3.network, model3.power)
        volts = [(v, v, v) for v in (0.6, 0.8, 1.0, 1.2)]
        for v in volts[:3]:
            model.steady_state(v)
        assert len(model._ss_cache) == 3
        model.steady_state(volts[0])  # refresh the oldest entry
        model.steady_state(volts[3])  # evicts volts[1], not volts[0]
        assert len(model._ss_cache) == 3
        before = len(model._ss_cache)
        model.steady_state(volts[0])  # still cached: no growth, same result
        assert len(model._ss_cache) == before
        np.testing.assert_array_equal(
            model.steady_state(volts[0]), model3.steady_state(volts[0])
        )


class TestConsumersUnchanged:
    """Rewired optimizers must emit byte-identical schedules."""

    def test_choose_m_batch_matches_scalar(self, platform3):
        cont = continuous_assignment(platform3)
        plan = plan_modes(platform3, cont.voltages)
        m_b, sched_b, hist_b = choose_m(platform3, plan, 0.02, m_cap=16, batch=True)
        m_s, sched_s, hist_s = choose_m(platform3, plan, 0.02, m_cap=16, batch=False)
        assert m_b == m_s
        assert sched_b.intervals == sched_s.intervals
        assert [m for m, _ in hist_b] == [m for m, _ in hist_s]
        for (_, p_b), (_, p_s) in zip(hist_b, hist_s):
            assert p_b == pytest.approx(p_s, abs=PARITY)

    def test_enforce_threshold_batch_matches_scalar(self, platform3):
        cont = continuous_assignment(platform3)
        plan = plan_modes(platform3, cont.voltages)
        ratios0 = plan.high_ratio.copy()

        def scalar_fn(s):
            return stepup_peak_temperature(platform3.model, s, check=False)

        r_b, sched_b, peak_b, it_b = enforce_threshold(
            platform3, plan, ratios0.copy(), 0.02, 4
        )
        r_s, sched_s, peak_s, it_s = enforce_threshold(
            platform3, plan, ratios0.copy(), 0.02, 4, peak_fn=scalar_fn
        )
        assert it_b == it_s
        np.testing.assert_array_equal(r_b, r_s)
        assert sched_b.intervals == sched_s.intervals
        assert peak_b.value == pytest.approx(peak_s.value, abs=PARITY)

    def test_fill_headroom_batch_matches_scalar(self, platform3):
        cont = continuous_assignment(platform3)
        plan = plan_modes(platform3, cont.voltages)
        ratios0, _, _, _ = enforce_threshold(
            platform3, plan, plan.high_ratio.copy(), 0.02, 4
        )

        def scalar_fn(s):
            return stepup_peak_temperature(platform3.model, s, check=False)

        r_b, sched_b, _, it_b = fill_headroom(
            platform3, plan, ratios0.copy(), 0.02, 4
        )
        r_s, sched_s, _, it_s = fill_headroom(
            platform3, plan, ratios0.copy(), 0.02, 4, peak_fn=scalar_fn
        )
        assert it_b == it_s
        np.testing.assert_array_equal(r_b, r_s)
        assert sched_b.intervals == sched_s.intervals
