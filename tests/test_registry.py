"""Tests for the uniform solver registry and cross-solver parity."""

from __future__ import annotations

import pytest

from repro.algorithms.base import SchedulerResult
from repro.algorithms.registry import SOLVERS, get_solver, solve
from repro.engine import ThermalEngine
from repro.errors import SolverError
from repro.platform import paper_platform
from repro.thermal.peak import peak_temperature

ALL_NAMES = (
    "LNS",
    "EXS",
    "EXS-pruned",
    "AO",
    "PCO",
    "dark",
    "reactive",
    "integral",
    "gain_sched",
    "continuous",
    "minpeak",
)

#: Small per-solver parameter sets keeping the parity sweep fast.
QUICK_PARAMS = {
    "AO": {"m_cap": 8},
    "PCO": {"m_cap": 8, "shift_grid": 2},
    "dark": {"m_cap": 8},
    "minpeak": {"m_cap": 8},
    "reactive": {"horizon": 0.2},
    "integral": {"horizon": 0.2},
    "gain_sched": {"horizon": 0.2},
}


class TestRegistryShape:
    def test_all_eleven_solvers_registered(self):
        assert set(SOLVERS) == set(ALL_NAMES)

    def test_specs_are_consistent(self):
        for name, spec in SOLVERS.items():
            assert spec.name == name
            assert callable(spec.func)
            assert spec.description
            # Quick presets must only use declared parameters.
            assert set(spec.quick) <= set(spec.params)

    def test_get_solver_case_insensitive(self):
        assert get_solver("ao") is SOLVERS["AO"]
        assert get_solver("EXS-PRUNED") is SOLVERS["EXS-pruned"]

    def test_get_solver_unknown(self):
        with pytest.raises(KeyError, match="known solvers"):
            get_solver("simulated-annealing")

    def test_solve_rejects_unknown_params(self, platform3):
        with pytest.raises(SolverError, match="does not accept"):
            SOLVERS["EXS"].solve(platform3, m_cap=8)

    def test_module_level_solve_dispatches(self, platform3):
        result = solve("LNS", platform3)
        assert isinstance(result, SchedulerResult)
        assert result.name == "LNS"


class TestSolverParity:
    """Every registered solver's ``feasible`` flag must agree with an
    independent peak evaluation of its schedule against the threshold."""

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_feasible_matches_independent_peak_check(self, platform3, name):
        spec = SOLVERS[name]
        params = QUICK_PARAMS.get(name, {})
        result = spec.solve(platform3, **params)

        assert isinstance(result, SchedulerResult)
        assert result.stats is not None

        if spec.schedule_is_artifact:
            independent = peak_temperature(platform3.model, result.schedule)
            peak = independent.value
            # The reported peak must describe the reported schedule.
            assert peak == pytest.approx(result.peak_theta, abs=5e-4)
        else:
            # reactive's schedule summarizes a closed-loop trace; its own
            # measured peak is the ground truth.
            peak = result.peak_theta

        assert result.feasible == (peak <= platform3.theta_max + 1e-3)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_accepts_engine_and_platform(self, platform3, name):
        """First argument may be a Platform or a shared ThermalEngine."""
        spec = SOLVERS[name]
        if name in ("EXS", "EXS-pruned", "reactive", "dark", "PCO"):
            pytest.skip("covered by the parity sweep; too slow to run twice")
        params = QUICK_PARAMS.get(name, {})
        engine = ThermalEngine(platform3)
        via_engine = spec.solve(engine, **params)
        via_platform = spec.solve(platform3, **params)
        assert via_engine.throughput == pytest.approx(via_platform.throughput)
        assert via_engine.peak_theta == pytest.approx(via_platform.peak_theta)


class TestNineCoreRegression:
    """Pin AO/PCO/EXS outputs on the paper's 9-core platform.

    These values were captured immediately before the engine refactor;
    the refactor must preserve them bit-for-bit (tolerance 1e-9).
    """

    @pytest.fixture(scope="class")
    def platform9(self):
        return paper_platform(9, n_levels=2, t_max_c=55.0)

    def test_ao_pinned(self, platform9):
        result = SOLVERS["AO"].solve(platform9, m_cap=16)
        assert result.throughput == pytest.approx(0.8473367064983373, abs=1e-9)
        assert result.peak_theta == pytest.approx(19.996671840567576, abs=1e-9)

    def test_exs_pinned(self, platform9):
        result = SOLVERS["EXS"].solve(platform9)
        assert result.throughput == pytest.approx(0.6, abs=1e-9)
        assert result.peak_theta == pytest.approx(4.649942053295519, abs=1e-9)

    def test_pco_pinned(self, platform9):
        result = SOLVERS["PCO"].solve(platform9, m_cap=16, shift_grid=4)
        assert result.throughput == pytest.approx(0.8485033731650043, abs=1e-9)
        assert result.peak_theta == pytest.approx(19.99340725999901, abs=1e-9)
