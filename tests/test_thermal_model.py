"""Unit tests for ThermalModel: folding, steady states, propagation."""

import numpy as np
import pytest

from repro.errors import ThermalModelError, ThermalRunawayError
from repro.floorplan.library import floorplan_2x1, floorplan_3x1
from repro.power.model import PowerModel
from repro.thermal.model import ThermalModel
from repro.thermal.rc import build_single_layer_network


class TestConstruction:
    def test_leakage_folding_on_core_diagonal(self, model3):
        net = model3.network
        diff = net.conductance - model3.g_eff
        expected = np.zeros_like(diff)
        cores = net.core_nodes
        expected[cores, cores] = model3.power.beta
        assert np.allclose(diff, expected)

    def test_thermal_runaway_detected(self):
        net = build_single_layer_network(floorplan_2x1())
        hot_power = PowerModel(beta=10.0)  # way beyond removal ability
        with pytest.raises(ThermalRunawayError):
            ThermalModel(net, hot_power)

    def test_eigenvalues_negative(self, model3):
        assert np.all(model3.eigen.eigenvalues < 0)

    def test_slowest_time_constant_ms_scale(self, model3):
        # The calibrated chip's dominant time constant is milliseconds.
        assert 1e-3 < model3.slowest_time_constant < 50e-3


class TestSteadyState:
    def test_matches_direct_solve(self, model3):
        v = [1.0, 0.8, 1.2]
        theta = model3.steady_state(v)
        assert np.allclose(model3.g_eff @ theta, model3.injection(v))

    def test_steady_state_memoized(self, model3):
        a = model3.steady_state([0.7, 0.7, 0.7])
        b = model3.steady_state([0.7, 0.7, 0.7])
        assert a is b  # same cached array

    def test_monotone_in_voltage(self, model3):
        low = model3.steady_state_cores([0.8, 0.8, 0.8])
        high = model3.steady_state_cores([0.9, 0.8, 0.8])
        assert np.all(high >= low - 1e-12)
        assert high[0] > low[0]

    def test_symmetry_of_symmetric_chip(self, model3):
        theta = model3.steady_state_cores([1.0, 0.8, 1.0])
        assert theta[0] == pytest.approx(theta[2])

    def test_idle_chip_is_ambient(self, model3):
        assert np.allclose(model3.steady_state([0.0, 0.0, 0.0]), 0.0)

    def test_batch_matches_single(self, model3, rng):
        volts = rng.choice([0.6, 0.9, 1.3], size=(7, 3))
        batch = model3.steady_state_batch(volts)
        for k in range(7):
            assert np.allclose(batch[k], model3.steady_state_cores(volts[k]))

    def test_batch_shape_validation(self, model3):
        with pytest.raises(ThermalModelError):
            model3.steady_state_batch(np.ones((4, 2)))


class TestPropagation:
    def test_zero_dt_identity(self, model3, rng):
        theta0 = rng.uniform(0, 10, size=model3.n_nodes)
        out = model3.propagate(theta0, 0.0, [0.8, 0.8, 0.8])
        assert np.allclose(out, theta0)

    def test_long_dt_reaches_steady(self, model3):
        v = [1.1, 0.9, 1.1]
        target = model3.steady_state(v)
        out = model3.propagate(np.zeros(model3.n_nodes), 100.0, v)
        assert np.allclose(out, target, atol=1e-9)

    def test_semigroup_property(self, model3, rng):
        v = [0.9, 1.2, 0.7]
        theta0 = rng.uniform(0, 15, size=model3.n_nodes)
        one = model3.propagate(theta0, 0.02, v)
        two = model3.propagate(model3.propagate(theta0, 0.01, v), 0.01, v)
        assert np.allclose(one, two, atol=1e-10)

    def test_negative_dt_rejected(self, model3):
        with pytest.raises(ThermalModelError):
            model3.propagate(np.zeros(model3.n_nodes), -0.1, [0.6, 0.6, 0.6])

    def test_superposition(self, model3):
        # LTI: response to (psi1 + psi2) = response to psi1 + response to psi2
        # (checked through steady states, which are linear in psi).
        t1 = model3.steady_state([0.8, 0.0, 0.0])
        t2 = model3.steady_state([0.0, 0.0, 1.1])
        t12 = model3.steady_state([0.8, 0.0, 1.1])
        assert np.allclose(t12, t1 + t2, atol=1e-12)


class TestInverseProblem:
    def test_required_injection_roundtrip(self, model3):
        target = np.array([25.0, 25.0, 25.0])
        q = model3.required_injection_for(target)
        # Feed the injections back: cores must sit at the target.
        v = [model3.power.psi_inverse(max(qi, 0.0)) for qi in q]
        theta = model3.steady_state_cores(np.clip(v, 0.6, 1.3))
        assert np.allclose(theta, target, atol=1e-9)

    def test_middle_core_needs_less_power(self, model3):
        q = model3.required_injection_for(np.full(3, 30.0))
        assert q[1] < q[0]
        assert q[0] == pytest.approx(q[2])


class TestUnits:
    def test_celsius_roundtrip(self, model3):
        theta = np.array([10.0, 20.0, 30.0])
        assert np.allclose(model3.from_celsius(model3.to_celsius(theta)), theta)

    def test_threshold_theta(self, model3):
        assert model3.threshold_theta(65.0) == pytest.approx(30.0)

    def test_threshold_below_ambient_rejected(self, model3):
        with pytest.raises(ThermalModelError):
            model3.threshold_theta(30.0)

    def test_b_vector_definition(self, model3):
        v = [1.0, 1.0, 1.0]
        assert np.allclose(
            model3.b_vector(v), model3.injection(v) / model3.c_diag
        )
