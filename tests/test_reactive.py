"""Tests for the reactive-DTM baseline."""

import numpy as np
import pytest

from repro.algorithms import ao
from repro.algorithms.reactive import reactive_throttling
from repro.errors import SolverError
from repro.experiments.reactive_comparison import reactive_comparison
from repro.platform import paper_platform


@pytest.fixture(scope="module")
def p3():
    return paper_platform(3, n_levels=2, t_max_c=65.0)


class TestReactiveGovernor:
    def test_zero_guard_overshoots(self, p3):
        r = reactive_throttling(p3, guard_band=0.0)
        assert r.details["overshoot_k"] > 0
        assert not r.feasible

    def test_large_guard_is_safe_but_slower(self, p3):
        safe = reactive_throttling(p3, guard_band=4.0)
        aggressive = reactive_throttling(p3, guard_band=0.0)
        assert safe.feasible
        assert safe.throughput < aggressive.throughput

    def test_throughput_monotone_in_guard(self, p3):
        thr = [
            reactive_throttling(p3, guard_band=g).throughput
            for g in (0.0, 2.0, 4.0, 8.0)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(thr, thr[1:]))

    def test_slower_sensor_overshoots_more(self, p3):
        fast = reactive_throttling(p3, guard_band=0.0, sensor_period=0.5e-3)
        slow = reactive_throttling(p3, guard_band=0.0, sensor_period=4e-3)
        assert slow.details["overshoot_k"] >= fast.details["overshoot_k"] - 1e-9

    def test_trace_recorded(self, p3):
        r = reactive_throttling(p3, guard_band=1.0)
        trace = r.details["trace"]
        assert trace.times.shape[0] == trace.temperatures.shape[0]
        assert trace.levels.shape[1] == 3
        # The governor actually throttles: levels vary over time.
        assert np.unique(trace.levels).size >= 2

    def test_invalid_sensor_period(self, p3):
        with pytest.raises(SolverError):
            reactive_throttling(p3, sensor_period=0.0)

    def test_ao_dominates_feasible_settings(self, p3):
        r_ao = ao(p3, m_cap=24)
        for g in (2.0, 4.0, 8.0):
            r = reactive_throttling(p3, guard_band=g)
            if r.feasible:
                assert r_ao.throughput >= r.throughput - 1e-9


class TestComparison:
    def test_experiment_shape(self):
        result = reactive_comparison(guard_bands=(0.0, 4.0), m_cap=12)
        assert result.ao_dominates
        assert "Reactive" in result.format()
        # The zero-guard row violates, the big-guard row does not.
        violations = {g: ok for g, _t, _o, ok in result.rows}
        assert violations[0.0] is False
        assert violations[4.0] is True
