"""Tests for the reactive-DTM baseline."""

import numpy as np
import pytest

from repro.algorithms import ao
from repro.algorithms.reactive import reactive_throttling
from repro.algorithms.registry import get_solver
from repro.engine import ThermalEngine
from repro.errors import SolverError
from repro.experiments.reactive_comparison import reactive_comparison
from repro.platform import paper_platform
from repro.safety.faults import FaultSpec, perturbed_peak


@pytest.fixture(scope="module")
def p3():
    return paper_platform(3, n_levels=2, t_max_c=65.0)


class TestReactiveGovernor:
    def test_zero_guard_overshoots(self, p3):
        r = reactive_throttling(p3, guard_band=0.0)
        assert r.details["overshoot_k"] > 0
        assert not r.feasible

    def test_large_guard_is_safe_but_slower(self, p3):
        safe = reactive_throttling(p3, guard_band=4.0)
        aggressive = reactive_throttling(p3, guard_band=0.0)
        assert safe.feasible
        assert safe.throughput < aggressive.throughput

    def test_throughput_monotone_in_guard(self, p3):
        thr = [
            reactive_throttling(p3, guard_band=g).throughput
            for g in (0.0, 2.0, 4.0, 8.0)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(thr, thr[1:]))

    def test_slower_sensor_overshoots_more(self, p3):
        fast = reactive_throttling(p3, guard_band=0.0, sensor_period=0.5e-3)
        slow = reactive_throttling(p3, guard_band=0.0, sensor_period=4e-3)
        assert slow.details["overshoot_k"] >= fast.details["overshoot_k"] - 1e-9

    def test_trace_recorded(self, p3):
        r = reactive_throttling(p3, guard_band=1.0)
        trace = r.details["trace"]
        assert trace.times.shape[0] == trace.temperatures.shape[0]
        assert trace.levels.shape[1] == 3
        # The governor actually throttles: levels vary over time.
        assert np.unique(trace.levels).size >= 2

    def test_invalid_sensor_period(self, p3):
        with pytest.raises(SolverError):
            reactive_throttling(p3, sensor_period=0.0)

    def test_ao_dominates_feasible_settings(self, p3):
        r_ao = ao(p3, m_cap=24)
        for g in (2.0, 4.0, 8.0):
            r = reactive_throttling(p3, guard_band=g)
            if r.feasible:
                assert r_ao.throughput >= r.throughput - 1e-9


class TestFaultInjection:
    """Sensor faults hurt the closed loop but not the offline certificate."""

    def test_dropout_worsens_overshoot(self, p3):
        clean = reactive_throttling(p3, guard_band=0.0)
        faulty = reactive_throttling(
            p3,
            guard_band=0.0,
            faults=FaultSpec(sensor_dropout_prob=0.5, seed=7),
        )
        # Stale readings delay throttling: the governor overshoots at
        # least as deep, and in this configuration strictly deeper.
        assert (
            faulty.details["overshoot_k"]
            > clean.details["overshoot_k"] + 0.01
        )
        assert not faulty.feasible

    def test_noise_changes_behaviour_deterministically(self, p3):
        spec = FaultSpec(sensor_noise_sigma=1.0, seed=3)
        a = reactive_throttling(p3, guard_band=2.0, faults=spec)
        b = reactive_throttling(p3, guard_band=2.0, faults=spec)
        clean = reactive_throttling(p3, guard_band=2.0)
        assert a.peak_theta == b.peak_theta  # seeded, reproducible
        assert a.peak_theta != clean.peak_theta  # and actually injected

    def test_faults_accepts_dict_and_lands_in_details(self, p3):
        r = reactive_throttling(
            p3, guard_band=1.0, faults={"sensor_dropout_prob": 0.2, "seed": 1}
        )
        assert r.details["faults"]["sensor_dropout_prob"] == 0.2
        clean = reactive_throttling(p3, guard_band=1.0)
        assert clean.details["faults"] is None

    def test_stuck_core_pins_level(self, p3):
        r = reactive_throttling(
            p3,
            guard_band=0.0,
            faults=FaultSpec(stuck_core=0, stuck_level=-1),
        )
        trace = r.details["trace"]
        ladder_top = max(np.unique(trace.levels))
        assert np.all(trace.levels[:, 0] == ladder_top)

    def test_certified_ao_margin_immune_to_sensor_faults(self, p3):
        """The paper's proactive-vs-reactive argument, hardened.

        Under injected sensor dropout+noise the reactive trace violates
        ``T_max`` while AO's independently certified margin is exactly
        unaffected — an offline schedule never reads a sensor.
        """
        sensor_faults = FaultSpec(
            sensor_noise_sigma=0.8, sensor_dropout_prob=0.4, seed=11
        )
        r_re = reactive_throttling(p3, guard_band=0.0, faults=sensor_faults)
        assert not r_re.feasible  # the closed loop violates T_max

        r_ao = get_solver("AO").solve(p3, m_cap=24)
        cert = r_ao.certificate
        assert cert is not None and cert.accepted
        faulted_peak = perturbed_peak(
            ThermalEngine.ensure(p3), r_ao.schedule, sensor_faults
        )
        # Sensor-only faults leave the open-loop peak bit-identical.
        assert faulted_peak == pytest.approx(cert.peak_theta, abs=1e-12)
        assert cert.margin > 0


class TestComparison:
    def test_experiment_shape(self):
        result = reactive_comparison(guard_bands=(0.0, 4.0), m_cap=12)
        assert result.ao_dominates
        assert "Reactive" in result.format()
        # The zero-guard row violates, the big-guard row does not.
        violations = {g: ok for g, _t, _o, ok in result.rows}
        assert violations[0.0] is False
        assert violations[4.0] is True
