"""End-to-end integration tests.

Every algorithm's emitted schedule is re-verified against the independent
RK45 oracle; the paper's headline ordering (AO ~= PCO >= EXS >= LNS) is
checked across configurations; the motivation-section narrative is
replayed end-to-end through the public API.
"""

import numpy as np
import pytest

import repro
from repro.thermal.reference import reference_peak


class TestOracleVerification:
    """The constraint holds under an engine the algorithms never saw."""

    @pytest.mark.parametrize(
        "n,levels,t_max", [(2, 2, 55.0), (3, 2, 65.0), (3, 5, 55.0)]
    )
    def test_ao_schedule_under_threshold(self, n, levels, t_max):
        p = repro.paper_platform(n, n_levels=levels, t_max_c=t_max)
        r = repro.ao(p)
        oracle = reference_peak(p.model, r.schedule, samples_per_interval=96)
        assert oracle <= p.theta_max + 0.05

    def test_pco_schedule_under_threshold(self):
        p = repro.paper_platform(3, n_levels=2, t_max_c=65.0)
        r = repro.pco(p, shift_grid=4)
        oracle = reference_peak(p.model, r.schedule, samples_per_interval=96)
        assert oracle <= p.theta_max + 0.05

    def test_exs_schedule_under_threshold(self):
        p = repro.paper_platform(6, n_levels=3, t_max_c=55.0)
        r = repro.exs(p)
        oracle = reference_peak(p.model, r.schedule, samples_per_interval=32)
        assert oracle <= p.theta_max + 0.05


class TestHeadlineOrdering:
    @pytest.mark.parametrize("n,levels", [(2, 2), (3, 3), (6, 2)])
    def test_ranking(self, n, levels):
        p = repro.paper_platform(n, n_levels=levels, t_max_c=55.0)
        r_lns = repro.lns(p)
        r_exs = repro.exs(p)
        r_ao = repro.ao(p, m_cap=32)
        assert r_exs.throughput >= r_lns.throughput - 1e-9
        assert r_ao.throughput >= r_exs.throughput - 1e-9
        for r in (r_lns, r_exs, r_ao):
            assert r.feasible

    def test_ao_within_continuous_bound(self):
        p = repro.paper_platform(9, n_levels=2, t_max_c=55.0)
        cont = repro.continuous_assignment(p)
        r = repro.ao(p, m_cap=32)
        assert r.throughput <= cont.throughput + 1e-9
        # AO recovers the bulk of the continuous ideal (the residual gap is
        # the two-speed convexity penalty of Theorem 3 with the wide
        # {0.6, 1.3} V mode pair, bounded by the overhead cap on m).
        assert r.throughput >= 0.80 * cont.throughput


class TestMotivationNarrative:
    """Section III's story, end to end through the public API."""

    def test_full_story(self):
        p = repro.paper_platform(3, n_levels=2, t_max_c=65.0)

        # Ideal continuous: [1.2085, 1.1748, 1.2085], THR 1.1972.
        cont = repro.continuous_assignment(p)
        assert cont.voltages == pytest.approx([1.2085, 1.1748, 1.2085], abs=2e-4)

        # LNS rounds everything to 0.6 V.
        assert repro.lns(p).throughput == pytest.approx(0.6)

        # EXS finds one core at 1.3 V: THR 0.83.
        assert repro.exs(p).throughput == pytest.approx(0.8333, abs=1e-3)

        # AO recovers most of the ideal with two-mode oscillation.
        r_ao = repro.ao(p)
        assert r_ao.throughput > 1.0
        assert r_ao.feasible

    def test_throughput_metric_equals_mean_voltage(self):
        p = repro.paper_platform(3, n_levels=2, t_max_c=65.0)
        r = repro.exs(p)
        assert r.throughput == pytest.approx(r.mean_voltage())


class TestPublicAPI:
    def test_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_schedule_roundtrip_through_transforms(self):
        p = repro.paper_platform(3, n_levels=2, t_max_c=65.0)
        r = repro.ao(p)
        s = r.schedule
        assert repro.throughput(repro.m_oscillate(s, 3)) == pytest.approx(
            repro.throughput(s)
        )
        u = repro.step_up(s)
        assert repro.stepup_peak_temperature(p.model, u).value >= 0

    def test_run_experiment_entry(self):
        result = repro.run_experiment("fig5", m_max=2)
        assert result.monotone in (True, False)
