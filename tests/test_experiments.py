"""Tests for the experiment harness (quick-scale runs of every artifact)."""

import numpy as np
import pytest

from repro.experiments.fig2 import fig2
from repro.experiments.fig3 import fig3
from repro.experiments.fig4 import fig4
from repro.experiments.fig5 import fig5
from repro.experiments.fig6 import fig6
from repro.experiments.fig7 import fig7
from repro.experiments.headline import headline
from repro.experiments.motivation import table2, table3
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment
from repro.experiments.reporting import ascii_table, to_csv
from repro.experiments.table5 import table5


class TestReporting:
    def test_ascii_table_alignment(self):
        text = ascii_table(["a", "bb"], [(1, 2.5), (10, 0.125)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.5000" in text and "0.1250" in text

    def test_to_csv(self):
        csv_text = to_csv(["x", "y"], [(1, 2), (3, 4)])
        assert csv_text.splitlines() == ["x,y", "1,2", "3,4"]


class TestTable2:
    def test_matches_paper_exactly(self):
        r = table2()
        assert r.high_ratios == pytest.approx([0.8693, 0.8211, 0.8693], abs=1e-4)
        assert r.ideal_throughput == pytest.approx(1.1972, abs=2e-4)
        assert (r.high_ratios + r.low_ratios) == pytest.approx(np.ones(3))

    def test_unthrottled_peak_exceeds_threshold(self):
        r = table2()
        # The paper's 79.69 C point: running Table II ratios violates 65 C.
        assert r.unthrottled_peak_theta > 30.0

    def test_format_mentions_paper_values(self):
        assert "0.8693" in table2().format()


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        return table3(periods=(0.020, 0.010, 0.005))

    def test_all_periods_meet_threshold(self, result):
        assert np.all(result.peaks_theta <= 30.0 + 1e-6)

    def test_throughput_rises_with_oscillation(self, result):
        assert np.all(np.diff(result.throughputs) > 0)

    def test_throughput_brackets_paper(self, result):
        # Same order of magnitude and the paper's qualitative window.
        assert 0.7 <= result.throughputs[0] <= 1.1
        assert result.throughputs[-1] <= 1.1973  # can't beat the ideal

    def test_format_runs(self, result):
        assert "t_p" in result.format()


class TestFig2:
    def test_single_core_oscillation_fails_to_help(self):
        r = fig2()
        assert not r.single_core_helped  # the paper's counterexample
        assert r.chipwide_peak_theta <= r.base_peak_theta + 1e-9

    def test_format(self):
        assert "Fig. 2" in fig2().format()


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return fig3(step=1.5, grid_per_interval=24)

    def test_stepup_corner_bounds_surface(self, result):
        assert result.bound_holds

    def test_surface_spread(self, result):
        assert result.max_peak_theta > result.min_peak_theta

    def test_format(self, result):
        assert "84.13" in result.format()


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return fig4(warmup_periods=4, samples_per_interval=8)

    def test_theorem1_within_lag(self, result):
        assert result.peak_at_end

    def test_warmup_monotone(self, result):
        assert result.monotone_rise

    def test_traces_shapes(self, result):
        assert result.warmup.temperatures.shape[0] > 0
        assert result.stable.temperatures.shape[0] > 0

    def test_format(self, result):
        assert "Theorem 1" in result.format()


class TestFig5:
    def test_monotone_decrease(self):
        r = fig5(m_max=6)
        assert r.monotone
        assert r.peaks_theta[0] >= r.peaks_theta[-1]

    def test_format(self):
        assert "Theorem 5" in fig5(m_max=3).format()


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6(core_counts=(2, 3), level_counts=(2, 3),
                    approaches=("LNS", "EXS", "AO"), m_cap=12)

    def test_ao_dominates(self, result):
        for cell in result.grid.cells:
            assert cell.throughput("AO") >= cell.throughput("EXS") - 1e-9
            assert cell.throughput("EXS") >= cell.throughput("LNS") - 1e-9

    def test_fewer_levels_bigger_gain(self, result):
        g2 = result.grid.find(3, n_levels=2).improvement("AO", "EXS")
        g3 = result.grid.find(3, n_levels=3).improvement("AO", "EXS")
        assert g2 >= g3 - 1e-9

    def test_format(self, result):
        assert "AO" in result.format()


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return fig7(core_counts=(2, 3), t_max_values=(55.0, 65.0),
                    approaches=("LNS", "EXS", "AO"), m_cap=12)

    def test_throughput_grows_with_threshold(self, result):
        for n in (2, 3):
            lo = result.grid.find(n, t_max_c=55.0)
            hi = result.grid.find(n, t_max_c=65.0)
            for name in ("EXS", "AO"):
                assert hi.throughput(name) >= lo.throughput(name) - 1e-9

    def test_format(self, result):
        assert "T_max" in result.format()


class TestTable5:
    def test_runtime_columns_positive(self):
        r = table5(core_counts=(2,), level_counts=(2,), m_cap=8)
        cell = r.grid.cells[0]
        assert cell.runtime("AO") > 0
        assert cell.runtime("EXS") > 0
        assert cell.runtime("PCO") > 0
        assert "Table V" in r.format()


class TestHeadline:
    def test_improvements_positive_on_small_grid(self):
        r = headline(core_counts=(3,), level_counts=(2,),
                     t_max_values=(55.0,), m_cap=12)
        assert r.max_improvement > 0
        assert r.mean_improvement > 0
        assert "89%" in r.format() or "+89" in r.format() or "89" in r.format()


class TestRegistry:
    def test_all_ids_present(self):
        expected = {"table2", "table3", "fig2", "fig3", "fig4", "fig5",
                    "fig6", "fig7", "table5", "headline", "tsp", "reactive",
                    "comparison", "faults", "control", "scaling", "realtime"}
        assert expected == set(EXPERIMENTS)

    def test_runner_capable_experiments(self):
        runner_capable = {n for n, s in EXPERIMENTS.items() if s.accepts_runner}
        assert runner_capable == {"comparison", "fig6", "fig7", "table5",
                                  "headline", "control", "scaling", "realtime"}

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_run_experiment_forwards_kwargs(self):
        r = run_experiment("fig5", m_max=2)
        assert len(r.m_values) == 2
