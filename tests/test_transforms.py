"""Unit tests for schedule transforms: step_up, m_oscillate, shift_core."""

import numpy as np
import pytest

from repro.errors import ScheduleError
from repro.schedule.builders import (
    constant_schedule,
    phase_schedule,
    random_schedule,
    two_mode_schedule,
)
from repro.schedule.intervals import StateInterval
from repro.schedule.periodic import PeriodicSchedule
from repro.schedule.properties import core_workloads, is_step_up, same_workload
from repro.schedule.transforms import (
    m_oscillate,
    m_oscillate_core,
    merge_adjacent,
    shift_core,
    step_up,
)


class TestStepUp:
    def test_sorts_each_core(self):
        s = PeriodicSchedule(
            (
                StateInterval(0.2, (1.3, 0.6)),
                StateInterval(0.3, (0.6, 1.0)),
                StateInterval(0.5, (1.0, 1.3)),
            )
        )
        u = step_up(s)
        assert is_step_up(u)
        volts = u.voltage_matrix
        assert np.all(np.diff(volts, axis=0) >= 0)

    def test_preserves_workload(self, rng):
        for _ in range(10):
            s = random_schedule(3, rng)
            u = step_up(s)
            assert same_workload(s, u)

    def test_idempotent(self, rng):
        s = random_schedule(4, rng)
        u = step_up(s)
        uu = step_up(u)
        assert np.allclose(u.voltage_matrix, uu.voltage_matrix)
        assert np.allclose(u.lengths, uu.lengths)

    def test_already_stepup_unchanged_semantics(self):
        s = two_mode_schedule([0.6, 0.6], [1.3, 1.3], [0.3, 0.6], 1.0)
        u = step_up(s)
        assert same_workload(s, u)
        assert is_step_up(u)


class TestMOscillate:
    def test_m1_identity(self, rng):
        s = random_schedule(2, rng)
        assert m_oscillate(s, 1) is s

    def test_scales_period(self, rng):
        s = random_schedule(2, rng)
        o = m_oscillate(s, 4)
        assert o.period == pytest.approx(s.period / 4)
        assert np.allclose(o.voltage_matrix, s.voltage_matrix)

    def test_preserves_throughput(self, rng):
        from repro.schedule.properties import throughput

        s = random_schedule(3, rng)
        assert throughput(m_oscillate(s, 5)) == pytest.approx(throughput(s))

    @pytest.mark.parametrize("m", [0, -1, 1.5])
    def test_invalid_m(self, m, rng):
        s = random_schedule(2, rng)
        with pytest.raises(ScheduleError):
            m_oscillate(s, m)


class TestMOscillateCore:
    def test_period_unchanged(self):
        s = phase_schedule([0.6, 0.6], [1.3, 1.3], 0.5, [0.0, 0.5], 1.0)
        o = m_oscillate_core(s, core=0, m=2)
        assert o.period == pytest.approx(s.period)

    def test_oscillated_core_cycles(self):
        s = phase_schedule([0.6, 0.6], [1.3, 1.3], 0.5, [0.0, 0.5], 1.0)
        o = m_oscillate_core(s, core=0, m=2)
        # Core 0 now switches 4 times per period instead of 2.
        tl = o.core_timeline(0)
        assert len(tl) == 4
        # Core 1 untouched.
        assert len(o.core_timeline(1)) == len(s.core_timeline(1))

    def test_workload_preserved(self):
        s = phase_schedule([0.6, 0.6], [1.3, 1.3], 0.5, [0.0, 0.5], 1.0)
        o = m_oscillate_core(s, core=0, m=3)
        assert same_workload(s, o)

    def test_invalid_args(self):
        s = constant_schedule([0.6, 0.6], period=1.0)
        with pytest.raises(ScheduleError):
            m_oscillate_core(s, core=5, m=2)
        with pytest.raises(ScheduleError):
            m_oscillate_core(s, core=0, m=0)


class TestShiftCore:
    def test_workload_preserved(self, rng):
        s = random_schedule(3, rng)
        t = shift_core(s, 1, 0.3 * s.period)
        assert same_workload(s, t)

    def test_only_target_core_moves(self):
        s = phase_schedule([0.6, 0.6], [1.3, 1.3], 0.3, [0.0, 0.0], 1.0)
        t = shift_core(s, 0, 0.5)
        # Core 1's timeline unchanged.
        w_before = core_workloads(s)
        w_after = core_workloads(t)
        assert np.allclose(w_before, w_after)
        assert t.voltage_at(0.1)[1] == s.voltage_at(0.1)[1]
        # Core 0's high window moved from [0, 0.3) to [0.5, 0.8).
        assert s.voltage_at(0.1)[0] == 1.3
        assert t.voltage_at(0.1)[0] == 0.6
        assert t.voltage_at(0.6)[0] == 1.3

    def test_full_period_shift_is_identity(self):
        s = phase_schedule([0.6], [1.3], 0.3, 0.2, 1.0)
        t = shift_core(s, 0, 1.0)
        assert np.allclose(t.voltage_at(0.3), s.voltage_at(0.3))

    def test_invalid_core(self):
        s = constant_schedule([0.6], period=1.0)
        with pytest.raises(ScheduleError):
            shift_core(s, 2, 0.1)


class TestMergeAdjacent:
    def test_merges_identical_neighbours(self):
        s = PeriodicSchedule(
            (
                StateInterval(0.2, (0.6, 0.6)),
                StateInterval(0.3, (0.6, 0.6)),
                StateInterval(0.5, (1.3, 0.6)),
            )
        )
        m = merge_adjacent(s)
        assert m.n_intervals == 2
        assert m.lengths[0] == pytest.approx(0.5)
        assert m.period == pytest.approx(s.period)

    def test_no_merge_needed(self):
        s = two_mode_schedule([0.6], [1.3], [0.5], 1.0)
        m = merge_adjacent(s)
        assert m.n_intervals == s.n_intervals
