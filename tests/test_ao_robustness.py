"""Robustness property tests: AO across randomized platforms.

The paper evaluates four fixed chips; here hypothesis perturbs the RC
constants, ladder, threshold and overhead, and asserts the invariants the
algorithm must keep *everywhere*:

* the emitted schedule respects T_max (verified by the exact engine),
* AO never loses to EXS or the continuous upper bound,
* the result is deterministic for a fixed platform.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import ao, continuous_assignment, exs
from repro.errors import SolverError
from repro.floorplan.library import paper_floorplan
from repro.platform import Platform
from repro.power.dvfs import TransitionOverhead, VoltageLadder
from repro.power.model import PowerModel
from repro.thermal.model import ThermalModel
from repro.thermal.params import SingleLayerParams
from repro.thermal.peak import peak_temperature
from repro.thermal.rc import build_single_layer_network


def build_platform(
    n_cores: int,
    g_scale: float,
    lat_scale: float,
    c_scale: float,
    t_max_c: float,
    ladder_levels: tuple[float, ...],
    tau: float,
) -> Platform:
    params = SingleLayerParams().scaled(
        g_direct=g_scale, g_boundary=g_scale,
        g_lateral=lat_scale, c_core=c_scale,
    )
    model = ThermalModel(
        build_single_layer_network(paper_floorplan(n_cores), params),
        PowerModel(),
    )
    return Platform(
        model=model,
        ladder=VoltageLadder(ladder_levels),
        overhead=TransitionOverhead(tau=tau),
        t_max_c=t_max_c,
    )


LADDERS = [
    (0.6, 1.3),
    (0.6, 0.8, 1.3),
    (0.6, 0.9, 1.1, 1.3),
    (0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3),
]


class TestAORobustness:
    @given(
        n_cores=st.sampled_from([2, 3, 6]),
        g_scale=st.floats(0.8, 1.6),
        lat_scale=st.floats(0.3, 3.0),
        c_scale=st.floats(0.3, 3.0),
        t_max_c=st.floats(48.0, 70.0),
        ladder_idx=st.integers(0, len(LADDERS) - 1),
        tau=st.sampled_from([0.0, 1e-6, 5e-6, 2e-5]),
    )
    @settings(max_examples=25, deadline=None)
    def test_invariants_hold_everywhere(
        self, n_cores, g_scale, lat_scale, c_scale, t_max_c, ladder_idx, tau
    ):
        platform = build_platform(
            n_cores, g_scale, lat_scale, c_scale, t_max_c,
            LADDERS[ladder_idx], tau,
        )
        try:
            cont = continuous_assignment(platform)
        except SolverError:
            return  # platform infeasible even at v_min: nothing to assert
        result = ao(platform, m_cap=24, m_step=2)

        # 1. Constraint verified with the exact engine.
        exact = peak_temperature(
            platform.model, result.schedule, grid_per_interval=96
        ).value
        assert exact <= platform.theta_max + 0.05

        # 2. Sandwiched between EXS and the continuous bound.
        assert result.throughput <= cont.throughput + 1e-9
        exs_result = exs(platform)
        assert result.throughput >= exs_result.throughput - 1e-6

    @given(
        t_max_c=st.floats(50.0, 68.0),
        ladder_idx=st.integers(0, len(LADDERS) - 1),
    )
    @settings(max_examples=10, deadline=None)
    def test_deterministic(self, t_max_c, ladder_idx):
        platform = build_platform(
            3, 1.0, 1.0, 1.0, t_max_c, LADDERS[ladder_idx], 5e-6
        )
        try:
            a = ao(platform, m_cap=16)
            b = ao(platform, m_cap=16)
        except SolverError:
            return
        assert a.throughput == pytest.approx(b.throughput, abs=1e-12)
        assert np.allclose(a.schedule.voltage_matrix, b.schedule.voltage_matrix)
        assert np.allclose(a.schedule.lengths, b.schedule.lengths)
