"""Tests for the PlatformSpec registry — the one canonical construction path.

Three claims are load-bearing:

* every named preset builds a platform **bitwise identical** (same
  ``platform_hash``) to the legacy factory call it replaced — the API
  redesign changed the addressing scheme, not the physics;
* specs round-trip JSON ⇄ object ⇄ cache key, including across a process
  restart, so journals and the on-disk schedule cache stay valid;
* sweep-derived copies (``with_t_max`` / ``with_ladder``) carry specs
  whose rebuild reproduces the copy's physics — no silent cache-key
  drift mid-sweep.
"""

import json
import subprocess
import sys
import warnings
from pathlib import Path

import pytest

from repro.api import load_platform
from repro.errors import ConfigurationError
from repro.platform import paper_platform, platform_3d
from repro.platforms import (
    FAMILIES,
    PlatformSpec,
    build_platform,
    get_family,
    get_preset,
    platform_names,
)
from repro.power.heterogeneous import big_little_power_model
from repro.scaling.generator import tech_platform
from repro.scaling.tables import CORE_STYLES, TECH_NODES
from repro.service import platform_hash, schedule_cache_key

SRC_DIR = Path(__file__).resolve().parents[1] / "src"


def _legacy_build(name: str):
    """The pre-registry factory call each preset replaced."""
    if name in ("paper", "paper3"):
        return paper_platform(3)
    if name == "big_little":
        return paper_platform(
            3, power=big_little_power_model(big_cores=[0], n_cores=3)
        )
    if name == "stack3d":
        return platform_3d(3, 2, 2)
    node, style = name.removeprefix("tech-").rsplit("-", 1)
    return tech_platform(node=int(node), style=style)


class TestPresetParity:
    @pytest.mark.parametrize("name", platform_names())
    def test_preset_matches_legacy_factory(self, name):
        spec, _description = get_preset(name)
        assert platform_hash(spec.build()) == platform_hash(_legacy_build(name))

    def test_preset_count_covers_tech_grid(self):
        expected = 4 + len(TECH_NODES) * len(CORE_STYLES)
        assert len(platform_names()) == expected

    def test_build_stamps_spec(self):
        spec = PlatformSpec.named("tech-16-io")
        assert spec.build().spec == spec

    def test_legacy_flat_dict_coerces_to_paper(self):
        doc = {"n_cores": 2, "n_levels": 2, "t_max_c": 65.0}
        built = build_platform(doc)
        assert platform_hash(built) == platform_hash(
            paper_platform(2, n_levels=2, t_max_c=65.0)
        )
        assert built.spec.family == "paper"


class TestRoundTrip:
    CASES = (
        PlatformSpec("paper"),
        PlatformSpec("paper", {"n_cores": 2, "t_max_c": 65.0}),
        PlatformSpec("big_little", {"big_cores": (0, 2), "n_cores": 4}),
        PlatformSpec("stack3d", {"n_layers": 2, "g_interlayer": 1.5}),
        PlatformSpec("tech", {"node": 16, "style": "o3", "stack_layers": 2}),
    )

    @pytest.mark.parametrize("spec", CASES, ids=lambda s: s.family)
    def test_json_object_roundtrip(self, spec):
        wire = json.loads(json.dumps(spec.as_dict()))
        assert PlatformSpec.from_dict(wire) == spec
        assert PlatformSpec.from_dict(wire).canonical() == spec.canonical()

    def test_canonical_insensitive_to_input_form(self):
        a = PlatformSpec("tech", {"style": "io", "node": 16})
        b = PlatformSpec("tech", {"node": 16, "style": "io"})
        c = PlatformSpec("tech", (("node", 16), ("style", "io")))
        assert a == b == c
        assert a.canonical() == b.canonical() == c.canonical()

    def test_list_values_canonicalized_to_tuples(self):
        a = PlatformSpec("big_little", {"big_cores": [0, 1]})
        b = PlatformSpec("big_little", {"big_cores": (0, 1)})
        assert a == b

    def test_cache_key_stable_across_process_restart(self):
        """A fresh interpreter must derive the same platform hash and
        schedule-cache key from the same spec document."""
        spec = PlatformSpec("tech", {"node": 22, "style": "io", "n_cores": 4})
        doc_json = json.dumps(spec.as_dict())
        code = (
            "import json, sys\n"
            "from repro.platforms import PlatformSpec\n"
            "from repro.service import platform_hash, schedule_cache_key\n"
            f"spec = PlatformSpec.from_dict(json.loads({doc_json!r}))\n"
            "phash = platform_hash(spec.build())\n"
            "print(phash)\n"
            "print(schedule_cache_key(phash, 'AO', {'m_cap': 8}, 0.05))\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env={"PYTHONPATH": str(SRC_DIR), "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
        phash_line, key_line = proc.stdout.split()
        phash = platform_hash(spec.build())
        assert phash_line == phash
        assert key_line == schedule_cache_key(phash, "AO", {"m_cap": 8}, 0.05)

    def test_platform_hash_coerces_spec_forms(self):
        built = platform_hash(PlatformSpec.named("tech-16-io").build())
        assert platform_hash("tech-16-io") == built
        assert platform_hash({"family": "tech",
                              "overrides": {"node": 16, "style": "io"}}) == built


class TestSweepDerivedSpecs:
    def test_with_t_max_spec_rebuilds_identically(self):
        p = PlatformSpec.named("tech-16-io").build()
        q = p.with_t_max(70.0)
        assert q.spec is not None
        assert platform_hash(q.spec.build()) == platform_hash(q)

    def test_with_ladder_spec_rebuilds_identically(self):
        from repro.power.dvfs import VoltageLadder

        p = PlatformSpec.named("paper").build()
        q = p.with_ladder(VoltageLadder((p.ladder.levels[0], p.ladder.levels[-1])))
        assert q.spec is not None
        assert platform_hash(q.spec.build()) == platform_hash(q)

    def test_specless_platform_copies_stay_specless(self):
        p = paper_platform(2)
        assert p.spec is None and p.with_t_max(60.0).spec is None


class TestCoercionAndErrors:
    def test_coerce_forms_agree(self):
        by_name = PlatformSpec.coerce("paper")
        by_none = PlatformSpec.coerce(None)
        by_doc = PlatformSpec.coerce({"family": "paper"})
        by_named_doc = PlatformSpec.coerce({"name": "paper"})
        assert by_name == by_none == by_doc == by_named_doc

    def test_unknown_family_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown platform family"):
            PlatformSpec("7nm_finfet")

    def test_unknown_override_rejected_with_valid_list(self):
        with pytest.raises(ConfigurationError, match="does not accept"):
            PlatformSpec("paper", {"node": 16})

    def test_unknown_preset_lists_known_names(self):
        with pytest.raises(ConfigurationError, match="tech-16-io"):
            PlatformSpec.named("tech-16")

    def test_object_override_rejected(self):
        with pytest.raises(ConfigurationError, match="JSON scalars"):
            PlatformSpec("paper", {"tau": object()})

    def test_family_params_all_declared(self):
        for family in FAMILIES.values():
            assert "ladder_levels" in family.params, family.name
        assert get_family("tech").params == FAMILIES["tech"].params


class TestLoadPlatformShim:
    def test_blessed_forms_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            load_platform("paper", t_max_c=65.0)
            load_platform(PlatformSpec("tech", {"node": 16, "style": "io"}))
            load_platform({"family": "paper", "overrides": {"n_cores": 2}})
            load_platform()

    def test_legacy_kwargs_warn_but_match(self):
        with pytest.warns(DeprecationWarning):
            legacy = load_platform(n_cores=2, n_levels=2, t_max_c=65.0)
        blessed = load_platform("paper", n_cores=2, n_levels=2, t_max_c=65.0)
        assert platform_hash(legacy) == platform_hash(blessed)

    def test_legacy_flat_dict_warns_but_matches(self):
        with pytest.warns(DeprecationWarning):
            legacy = load_platform({"n_cores": 2, "n_levels": 2})
        assert platform_hash(legacy) == platform_hash(
            load_platform("paper", n_cores=2, n_levels=2)
        )

    def test_legacy_object_overrides_still_build(self):
        power = big_little_power_model(big_cores=[0], n_cores=2)
        with pytest.warns(DeprecationWarning):
            built = load_platform(n_cores=2, power=power)
        assert built.model.power is power and built.spec is None
