"""Tests for 3D stacking and dark-silicon scheduling."""

import numpy as np
import pytest

from repro.algorithms import ao, continuous_assignment
from repro.algorithms.dark import dark_silicon_ao
from repro.errors import FloorplanError, InfeasibleError, SolverError, ThermalModelError
from repro.floorplan import Stack3D, grid_floorplan
from repro.platform import platform_3d, paper_platform
from repro.thermal.stack3d import build_3d_network
from repro.util.linalg import is_positive_definite, is_symmetric


class TestStack3D:
    def test_indexing_roundtrip(self):
        stack = Stack3D(base=grid_floorplan(2, 3), n_layers=3)
        assert stack.n_cores == 18
        for layer in range(3):
            for core in range(6):
                idx = stack.core_index(layer, core)
                assert stack.layer_of(idx) == (layer, core)

    def test_validation(self):
        with pytest.raises(FloorplanError):
            Stack3D(base=grid_floorplan(2, 2), n_layers=0)
        stack = Stack3D(base=grid_floorplan(2, 2), n_layers=2)
        with pytest.raises(FloorplanError):
            stack.core_index(2, 0)
        with pytest.raises(FloorplanError):
            stack.core_index(0, 4)
        with pytest.raises(FloorplanError):
            stack.layer_of(8)

    def test_describe(self):
        stack = Stack3D(base=grid_floorplan(1, 2), n_layers=2)
        assert "Stack3D" in stack.describe()


class TestBuild3DNetwork:
    def test_matrix_properties(self):
        stack = Stack3D(base=grid_floorplan(2, 2), n_layers=3)
        net = build_3d_network(stack)
        assert net.n_nodes == 12
        assert is_symmetric(net.conductance)
        assert is_positive_definite(net.conductance)

    def test_single_layer_matches_planar(self):
        from repro.thermal.rc import build_single_layer_network

        base = grid_floorplan(2, 2)
        stack_net = build_3d_network(Stack3D(base=base, n_layers=1))
        planar_net = build_single_layer_network(base)
        assert np.allclose(stack_net.conductance, planar_net.conductance)

    def test_validation(self):
        stack = Stack3D(base=grid_floorplan(2, 2), n_layers=2)
        with pytest.raises(ThermalModelError):
            build_3d_network(stack, g_interlayer=0.0)
        with pytest.raises(ThermalModelError):
            build_3d_network(stack, sidewall_fraction=1.5)

    def test_upper_layers_run_hotter(self):
        p = platform_3d(3, 2, 2, t_max_c=90.0)
        # Uniform power: steady temperatures rise with the layer index.
        theta = p.model.steady_state_cores(np.full(12, 0.8))
        per_layer = theta.reshape(3, 4).mean(axis=1)
        assert per_layer[0] < per_layer[1] < per_layer[2]


class TestPlatform3D:
    def test_ideal_budget_decreases_with_layers(self):
        thr = []
        for layers in (1, 2):
            p = platform_3d(layers, 2, 2, t_max_c=65.0)
            thr.append(continuous_assignment(p).throughput)
        assert thr[1] < thr[0]

    def test_upper_layer_lower_voltage(self):
        p = platform_3d(2, 2, 2, t_max_c=65.0)
        ca = continuous_assignment(p)
        v = ca.voltages.reshape(2, 4)
        assert v[1].mean() <= v[0].mean() + 1e-9

    def test_ao_on_feasible_stack(self):
        p = platform_3d(2, 2, 2, n_levels=2, t_max_c=65.0)
        r = ao(p, m_cap=24)
        assert r.feasible

    def test_infeasible_stack_raises(self):
        p = platform_3d(3, 2, 2, n_levels=2, t_max_c=65.0)
        with pytest.raises(SolverError):
            continuous_assignment(p)


class TestDarkSilicon:
    def test_rescues_infeasible_stack(self):
        p = platform_3d(3, 2, 2, n_levels=2, t_max_c=65.0)
        r = dark_silicon_ao(p, m_cap=16)
        assert r.feasible
        assert len(r.details["dark_cores"]) >= 1
        # The gated cores really are off in the emitted schedule.
        volts = r.schedule.voltage_matrix
        for core in r.details["dark_cores"]:
            assert np.all(volts[:, core] == 0.0)

    def test_gates_upper_layers_first(self):
        p = platform_3d(3, 2, 2, n_levels=2, t_max_c=65.0)
        r = dark_silicon_ao(p, m_cap=16)
        stack = Stack3D(base=grid_floorplan(2, 2), n_layers=3)
        layers = [stack.layer_of(c)[0] for c in r.details["dark_cores"]]
        # The worst-cooled cores live in the upper layers.
        assert min(layers) >= 1

    def test_noop_on_feasible_planar_chip(self):
        p = paper_platform(3, n_levels=2, t_max_c=65.0)
        r = dark_silicon_ao(p, m_cap=16)
        assert r.details["dark_cores"] == []
        plain = ao(p, m_cap=16)
        assert r.throughput == pytest.approx(plain.throughput, rel=1e-6)

    def test_oracle_verification(self):
        from repro.thermal.reference import reference_peak

        p = platform_3d(2, 2, 2, n_levels=2, t_max_c=55.0)
        r = dark_silicon_ao(p, m_cap=16)
        oracle = reference_peak(p.model, r.schedule, samples_per_interval=32)
        assert oracle <= p.theta_max + 0.05

    def test_hopeless_platform_raises(self):
        # Threshold barely above ambient: even one core at v_min overheats.
        p = platform_3d(2, 2, 2, n_levels=2, t_max_c=36.5)
        with pytest.raises(InfeasibleError):
            dark_silicon_ao(p, m_cap=8)
