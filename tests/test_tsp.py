"""Tests for the Thermal Safe Power baseline."""

import numpy as np
import pytest

from repro.analysis.tsp import thermal_safe_power, tsp_throughput
from repro.errors import SolverError
from repro.experiments.tsp_comparison import tsp_comparison
from repro.platform import paper_platform


class TestThermalSafePower:
    @pytest.fixture(scope="class")
    def p9(self):
        return paper_platform(9, n_levels=2, t_max_c=55.0)

    def test_budget_decreases_with_active_count(self, p9):
        budgets = [thermal_safe_power(p9, k).power_per_core for k in range(1, 10)]
        assert all(b >= a - 1e-12 for a, b in zip(budgets, budgets[1:])) is False
        assert all(a >= b - 1e-12 for a, b in zip(budgets, budgets[1:]))

    def test_budget_is_safe_on_worst_set(self, p9):
        res = thermal_safe_power(p9, 4)
        psi = np.zeros(9)
        psi[list(res.worst_set)] = res.power_per_core
        theta = np.linalg.solve(p9.model.g_eff, psi)
        assert theta.max() == pytest.approx(p9.theta_max, rel=1e-9)

    def test_budget_is_safe_on_every_set(self, p9):
        # Exhaustively verify the definition for a small k.
        import itertools

        res = thermal_safe_power(p9, 2)
        for subset in itertools.combinations(range(9), 2):
            psi = np.zeros(9)
            psi[list(subset)] = res.power_per_core
            theta = np.linalg.solve(p9.model.g_eff, psi)
            assert theta.max() <= p9.theta_max + 1e-9

    def test_full_chip_worst_set_is_everything(self, p9):
        res = thermal_safe_power(p9, 9)
        assert res.worst_set == tuple(range(9))
        assert res.exact

    def test_invalid_count(self, p9):
        with pytest.raises(SolverError):
            thermal_safe_power(p9, 0)
        with pytest.raises(SolverError):
            thermal_safe_power(p9, 10)

    def test_worst_set_is_clustered(self, p9):
        # The hottest placement packs cores together (mutual heating).
        res = thermal_safe_power(p9, 4)
        rows = [c // 3 for c in res.worst_set]
        cols = [c % 3 for c in res.worst_set]
        assert max(rows) - min(rows) <= 1
        assert max(cols) - min(cols) <= 1


class TestTSPThroughput:
    def test_bounded_by_ladder(self):
        p = paper_platform(3, n_levels=2, t_max_c=55.0)
        thr = tsp_throughput(p)
        assert 0.0 <= thr <= p.ladder.v_max

    def test_specific_count(self):
        p = paper_platform(3, n_levels=5, t_max_c=65.0)
        thr_all = tsp_throughput(p, n_active=3)
        thr_best = tsp_throughput(p)
        assert thr_best >= thr_all - 1e-12


class TestComparison:
    def test_ao_dominates_tsp(self):
        r = tsp_comparison(core_counts=(2, 3), m_cap=12)
        assert r.ao_always_wins
        assert "TSP" in r.format()
