"""Tests for the workload/thermal co-simulation engine."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.platform import paper_platform
from repro.schedule.builders import constant_schedule, two_mode_schedule
from repro.sim import cosimulate
from repro.workload.tasks import PeriodicTask


@pytest.fixture(scope="module")
def p3():
    return paper_platform(3, n_levels=5, t_max_c=65.0)


def light_tasks(u: float, period: float = 0.05) -> list[PeriodicTask]:
    return [PeriodicTask(f"t{period}", wcec=u * period, period_s=period)]


class TestCosimulate:
    def test_fast_tasks_earn_large_idle_dividend(self, p3):
        # Half-loaded cores with 2 ms task periods: the idle gaps interleave
        # below the ~3 ms thermal time constant, so race-to-idle genuinely
        # cools — the m-oscillation insight, observed from the task side.
        sched = constant_schedule([1.2, 1.2, 1.2], period=0.02)
        tasks = [light_tasks(0.5, period=0.002) for _ in range(3)]
        rep = cosimulate(p3.model, sched, tasks, horizon_s=0.2)
        assert rep.all_deadlines_met
        assert rep.idle_fractions.min() > 0.3
        assert rep.idle_dividend_theta > 5.0
        assert rep.actual_peak_theta < rep.nominal_peak_theta

    def test_slow_tasks_earn_little_despite_idle_time(self, p3):
        # Same 58% idle but in ~20-30 ms stretches (far above the thermal
        # time constant): each busy burst still reaches the full nominal
        # quasi-steady peak, so the dividend nearly vanishes.  Slack only
        # cools when interleaved fast — the paper's core insight.
        sched = constant_schedule([1.2, 1.2, 1.2], period=0.02)
        tasks = [light_tasks(0.5, period=0.05) for _ in range(3)]
        rep = cosimulate(p3.model, sched, tasks, horizon_s=0.2)
        assert rep.idle_fractions.min() > 0.3
        assert rep.idle_dividend_theta < 1.0

    def test_fully_loaded_core_has_no_dividend(self, p3):
        sched = constant_schedule([1.0, 1.0, 1.0], period=0.02)
        tasks = [light_tasks(0.999), light_tasks(0.999), light_tasks(0.999)]
        rep = cosimulate(p3.model, sched, tasks)
        assert rep.idle_fractions.max() < 0.05
        assert rep.idle_dividend_theta == pytest.approx(0.0, abs=0.5)

    def test_actual_never_exceeds_nominal(self, p3, rng):
        sched = two_mode_schedule([0.6] * 3, [1.3] * 3, [0.5, 0.7, 0.3], 0.01)
        tasks = [light_tasks(float(rng.uniform(0.2, 0.8))) for _ in range(3)]
        rep = cosimulate(p3.model, sched, tasks)
        assert rep.actual_peak_theta <= rep.nominal_peak_theta + 1e-6

    def test_empty_core_idles_completely(self, p3):
        sched = constant_schedule([1.0, 1.0, 1.0], period=0.02)
        tasks = [light_tasks(0.5), [], light_tasks(0.5)]
        rep = cosimulate(p3.model, sched, tasks)
        assert rep.idle_fractions[1] == pytest.approx(1.0)
        assert rep.edf_reports[1].jobs_released == 0

    def test_overload_reports_misses(self, p3):
        sched = constant_schedule([0.6, 0.6, 0.6], period=0.02)
        tasks = [light_tasks(0.9), light_tasks(0.1), light_tasks(0.1)]
        rep = cosimulate(p3.model, sched, tasks)
        assert not rep.all_deadlines_met
        assert not rep.edf_reports[0].all_deadlines_met

    def test_core_count_mismatch_rejected(self, p3):
        sched = constant_schedule([1.0, 1.0, 1.0], period=0.02)
        with pytest.raises(ConfigurationError):
            cosimulate(p3.model, sched, [light_tasks(0.5)])

    def test_summary(self, p3):
        sched = constant_schedule([1.0, 1.0, 1.0], period=0.02)
        tasks = [light_tasks(0.5)] * 3
        assert "cosim" in cosimulate(p3.model, sched, tasks).summary()
