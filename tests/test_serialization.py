"""Tests for schedule/result JSON serialization."""

import json

import numpy as np
import pytest

from repro.algorithms import ao
from repro.errors import ScheduleError
from repro.platform import paper_platform
from repro.schedule.builders import random_schedule, two_mode_schedule
from repro.schedule.serialization import (
    result_to_dict,
    schedule_from_dict,
    schedule_from_json,
    schedule_to_dict,
    schedule_to_json,
)


class TestScheduleRoundtrip:
    def test_roundtrip_preserves_everything(self, rng):
        s = random_schedule(4, rng)
        back = schedule_from_json(schedule_to_json(s))
        assert back.n_cores == s.n_cores
        assert np.allclose(back.lengths, s.lengths)
        assert np.allclose(back.voltage_matrix, s.voltage_matrix)

    def test_json_is_plain(self):
        s = two_mode_schedule([0.6], [1.3], [0.5], 0.02)
        doc = json.loads(schedule_to_json(s))
        assert doc["format"] == "repro.schedule"
        assert doc["version"] == 1
        assert doc["n_cores"] == 1
        assert len(doc["intervals"]) == 2

    def test_indent_option(self):
        s = two_mode_schedule([0.6], [1.3], [0.5], 0.02)
        assert "\n" in schedule_to_json(s, indent=2)

    def test_rejects_wrong_format(self):
        with pytest.raises(ScheduleError):
            schedule_from_dict({"format": "something-else"})

    def test_rejects_wrong_version(self):
        s = two_mode_schedule([0.6], [1.3], [0.5], 0.02)
        doc = schedule_to_dict(s)
        doc["version"] = 99
        with pytest.raises(ScheduleError):
            schedule_from_dict(doc)

    def test_rejects_core_count_mismatch(self):
        s = two_mode_schedule([0.6, 0.6], [1.3, 1.3], [0.5, 0.5], 0.02)
        doc = schedule_to_dict(s)
        doc["n_cores"] = 5
        with pytest.raises(ScheduleError):
            schedule_from_dict(doc)

    def test_rejects_malformed_intervals(self):
        with pytest.raises(ScheduleError):
            schedule_from_dict(
                {
                    "format": "repro.schedule",
                    "version": 1,
                    "intervals": [{"length_s": 1.0}],  # missing voltages
                }
            )

    def test_rejects_invalid_json(self):
        with pytest.raises(ScheduleError):
            schedule_from_json("{not json")


class TestResultSerialization:
    def test_ao_result_jsonable(self):
        p = paper_platform(3, n_levels=2, t_max_c=65.0)
        r = ao(p, m_cap=8)
        doc = result_to_dict(r)
        text = json.dumps(doc)  # must not raise
        parsed = json.loads(text)
        assert parsed["name"] == "AO"
        assert parsed["feasible"] is True
        assert parsed["schedule"]["n_cores"] == 3
        assert "m_opt" in parsed["details"]

    def test_schedule_embedded_roundtrip(self):
        p = paper_platform(2, n_levels=2, t_max_c=65.0)
        r = ao(p, m_cap=8)
        doc = result_to_dict(r)
        back = schedule_from_dict(doc["schedule"])
        assert np.allclose(back.voltage_matrix, r.schedule.voltage_matrix)
