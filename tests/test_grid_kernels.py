"""Cross-platform grid kernels vs the scalar paths, to 1e-9.

Covers the (platform × schedule) tensorized kernels
(:mod:`repro.thermal.grid`), the process-shared eigenbasis cache
(:mod:`repro.util.eigcache`), the ``REPRO_GRID_CHUNK_ELEMENTS`` override,
and the grid-batched consumers (``choose_m_grid``, ``certify_grid``,
``perturbed_peak_batch``, the comparison batch executor).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import EngineStats, ThermalEngine
from repro.errors import ConfigurationError
from repro.platform import Platform, paper_platform, platform_3d
from repro.power import TransitionOverhead, big_little_power_model, paper_ladder
from repro.floorplan import paper_floorplan
from repro.schedule.builders import (
    constant_schedule,
    random_schedule,
    random_stepup_schedule,
)
from repro.thermal.batch import GRID_CHUNK_ELEMENTS, grid_chunk_elements
from repro.thermal.grid import (
    peak_temperature_grid,
    periodic_steady_state_grid,
    stepup_peak_temperature_grid,
)
from repro.thermal.model import ThermalModel
from repro.thermal.peak import peak_temperature, stepup_peak_temperature
from repro.thermal.periodic import periodic_steady_state
from repro.thermal.rc import build_single_layer_network
from repro.util import eigcache
from repro.util.linalg import EigenExpm

PARITY = 1e-9


def _big_little_platform(n_cores=6, t_max_c=55.0):
    fp = paper_floorplan(n_cores)
    pm = big_little_power_model(big_cores=list(range(n_cores // 2)), n_cores=n_cores)
    model = ThermalModel(build_single_layer_network(fp), pm)
    return Platform(
        model=model,
        ladder=paper_ladder(2),
        overhead=TransitionOverhead(),
        t_max_c=t_max_c,
    )


@pytest.fixture(scope="module")
def hetero_models():
    """Heterogeneous platform mix: core counts, power models, topology."""
    return [
        paper_platform(2, n_levels=2, t_max_c=65.0).model,
        paper_platform(3, n_levels=3, t_max_c=55.0).model,
        _big_little_platform().model,
        platform_3d(2, 2, 2, n_levels=2, t_max_c=60.0).model,
    ]


def _mixed_rows(models, rng, per_model=6, stepup_only=False):
    rows = []
    for model in models:
        for i in range(per_model):
            segments = int(rng.integers(1, 6))
            if stepup_only or i % 2 == 0:
                s = random_stepup_schedule(
                    model.n_cores, rng, max_segments=segments, period=0.02
                )
            else:
                s = random_schedule(
                    model.n_cores, rng, max_segments=segments, period=0.02
                )
            rows.append((model, s))
    return rows


class TestGridParity:
    def test_steady_state_grid(self, hetero_models, rng):
        rows = _mixed_rows(hetero_models, rng)
        grid = periodic_steady_state_grid(rows)
        for (model, sched), sol in zip(rows, grid):
            check = periodic_steady_state(model, sched)
            np.testing.assert_allclose(
                sol.boundary_temperatures,
                check.boundary_temperatures,
                atol=PARITY,
            )

    def test_stepup_grid(self, hetero_models, rng):
        rows = _mixed_rows(hetero_models, rng, stepup_only=True)
        grid = stepup_peak_temperature_grid(rows, check=False)
        for (model, sched), res in zip(rows, grid):
            check = stepup_peak_temperature(model, sched, check=False)
            assert res.value == pytest.approx(check.value, abs=PARITY)
            np.testing.assert_allclose(
                res.core_peaks, check.core_peaks, atol=PARITY
            )

    def test_general_grid(self, hetero_models, rng):
        rows = _mixed_rows(hetero_models, rng)
        grid = peak_temperature_grid(rows)
        for (model, sched), res in zip(rows, grid):
            check = peak_temperature(model, sched)
            assert res.value == pytest.approx(check.value, abs=PARITY)
            np.testing.assert_allclose(
                res.core_peaks, check.core_peaks, atol=PARITY
            )

    def test_general_grid_no_fast_path(self, hetero_models, rng):
        rows = _mixed_rows(hetero_models, rng, per_model=3)
        grid = peak_temperature_grid(rows, stepup_fast_path=False)
        for (model, sched), res in zip(rows, grid):
            check = peak_temperature(model, sched, stepup_fast_path=False)
            assert res.value == pytest.approx(check.value, abs=PARITY)

    def test_padded_interval_edges(self, hetero_models, rng):
        """Rows with wildly different interval counts pad correctly."""
        m_small, m_large = hetero_models[0], hetero_models[-1]
        rows = [
            (m_small, constant_schedule([1.0, 1.0], period=0.02)),
            (m_large, random_schedule(m_large.n_cores, rng, max_segments=8)),
            (m_small, random_stepup_schedule(2, rng, max_segments=1)),
        ]
        grid = peak_temperature_grid(rows)
        for (model, sched), res in zip(rows, grid):
            check = peak_temperature(model, sched)
            assert res.value == pytest.approx(check.value, abs=PARITY)

    def test_single_row_and_empty(self, hetero_models, rng):
        model = hetero_models[1]
        sched = random_schedule(model.n_cores, rng)
        [res] = peak_temperature_grid([(model, sched)])
        assert res.value == pytest.approx(
            peak_temperature(model, sched).value, abs=PARITY
        )
        assert peak_temperature_grid([]) == []
        assert stepup_peak_temperature_grid([]) == []
        assert periodic_steady_state_grid([]) == []

    @settings(max_examples=15, deadline=None)
    @given(perm_seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_platform_axis_permutation_invariance(
        self, hetero_models, perm_seed
    ):
        """Row order (hence platform stacking order) never changes results."""
        rng = np.random.default_rng(7)
        rows = _mixed_rows(hetero_models, rng, per_model=3)
        base = peak_temperature_grid(rows)
        perm = np.random.default_rng(perm_seed).permutation(len(rows))
        shuffled = peak_temperature_grid([rows[i] for i in perm])
        for k, i in enumerate(perm):
            assert shuffled[k].value == base[i].value
            assert shuffled[k].core == base[i].core


class TestChunkBudget:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_GRID_CHUNK_ELEMENTS", raising=False)
        assert grid_chunk_elements() == GRID_CHUNK_ELEMENTS

    def test_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_GRID_CHUNK_ELEMENTS", "1234")
        assert grid_chunk_elements() == 1234

    @pytest.mark.parametrize("bad", ["nope", "1.5", "0", "-4"])
    def test_invalid(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_GRID_CHUNK_ELEMENTS", bad)
        with pytest.raises(ConfigurationError):
            grid_chunk_elements()

    def test_forced_chunking_parity(self, hetero_models, rng, monkeypatch):
        rows = _mixed_rows(hetero_models, rng, per_model=4)
        baseline = peak_temperature_grid(rows)
        monkeypatch.setenv("REPRO_GRID_CHUNK_ELEMENTS", "1000")
        chunked = peak_temperature_grid(rows)
        for a, b in zip(baseline, chunked):
            assert a.value == b.value
            assert a.core == b.core


class TestEigenCache:
    def test_key_content_addressed(self, model3):
        k1 = eigcache.eigen_cache_key(model3.a, model3.c_diag)
        k2 = eigcache.eigen_cache_key(model3.a.copy(), model3.c_diag.copy())
        assert k1 == k2
        k3 = eigcache.eigen_cache_key(model3.a * 1.0000001, model3.c_diag)
        assert k3 != k1

    def test_memory_hit(self, model3, monkeypatch):
        monkeypatch.setenv("REPRO_EIG_CACHE", "0")  # memory layer only
        eigcache.clear_memory_cache()
        eig1, origin1 = eigcache.shared_eigen(model3.a, c_diag=model3.c_diag)
        eig2, origin2 = eigcache.shared_eigen(model3.a, c_diag=model3.c_diag)
        assert origin1 == "miss" and origin2 == "memory"
        np.testing.assert_array_equal(eig1.eigenvalues, eig2.eigenvalues)
        assert eig1 is not eig2  # fresh wrapper, shared factors

    def test_disk_roundtrip(self, model3, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_EIG_CACHE", raising=False)
        monkeypatch.setenv("REPRO_EIG_CACHE_DIR", str(tmp_path))
        eigcache.clear_memory_cache()
        _, origin1 = eigcache.shared_eigen(model3.a, c_diag=model3.c_diag)
        assert origin1 == "miss"
        assert list(tmp_path.glob("*.npz"))  # written through
        eigcache.clear_memory_cache()  # simulate a fresh worker process
        eig, origin2 = eigcache.shared_eigen(model3.a, c_diag=model3.c_diag)
        assert origin2 == "disk"
        check = EigenExpm(model3.a, c_diag=model3.c_diag)
        np.testing.assert_allclose(eig.eigenvalues, check.eigenvalues)

    def test_factors_read_only(self, model3, monkeypatch):
        monkeypatch.setenv("REPRO_EIG_CACHE", "0")
        eigcache.clear_memory_cache()
        eigcache.shared_eigen(model3.a, c_diag=model3.c_diag)
        eig, origin = eigcache.shared_eigen(model3.a, c_diag=model3.c_diag)
        assert origin == "memory"
        with pytest.raises(ValueError):
            eig.eigenvalues[0] = 0.0

    def test_model_counters(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_EIG_CACHE_DIR", str(tmp_path))
        eigcache.clear_memory_cache()
        m1 = paper_platform(3, n_levels=2, t_max_c=55.0).model
        _ = m1.eigen
        assert (m1.eig_cache_hits, m1.eig_cache_misses) == (0, 1)
        m2 = paper_platform(3, n_levels=2, t_max_c=55.0).model
        _ = m2.eigen
        assert (m2.eig_cache_hits, m2.eig_cache_misses) == (1, 0)

    def test_stats_flow(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_EIG_CACHE_DIR", str(tmp_path))
        eigcache.clear_memory_cache()
        engine = ThermalEngine(paper_platform(2, n_levels=2, t_max_c=65.0))
        mark = engine.checkpoint()
        _ = engine.model.eigen
        stats = engine.stats_since(mark)
        assert stats.eigen_cache_misses == 1
        assert stats.eigen_cache_hit_rate == 0.0
        # combine() aggregates per-unit rows into one truthful hit-rate.
        combined = stats.combine(
            EngineStats(eigen_cache_hits=3, eigen_cache_misses=0)
        )
        assert combined.eigen_cache_hits == 3
        assert combined.eigen_cache_misses == 1
        assert combined.eigen_cache_hit_rate == pytest.approx(0.75)
        assert "eigenbasis cache" in combined.format()
        roundtrip = EngineStats.from_dict(combined.as_dict())
        assert roundtrip.eigen_cache_hits == 3


class TestGridConsumers:
    def test_choose_m_grid(self, rng):
        from repro.algorithms.continuous import continuous_assignment
        from repro.algorithms.oscillation import choose_m, choose_m_grid, plan_modes

        targets = []
        for n, t_max in ((2, 65.0), (3, 55.0)):
            engine = ThermalEngine(paper_platform(n, n_levels=2, t_max_c=t_max))
            cont = continuous_assignment(engine.platform)
            plan = plan_modes(engine.platform, cont.voltages)
            targets.append((engine, plan))
        grid = choose_m_grid(targets, period=0.02, m_cap=8)
        for (engine, plan), (m_opt, sched, history) in zip(targets, grid):
            m_ref, sched_ref, hist_ref = choose_m(
                engine, plan, 0.02, m_cap=8
            )
            assert m_opt == m_ref
            assert sched == sched_ref
            assert [m for m, _ in history] == [m for m, _ in hist_ref]

    def test_engine_hints_one_shot(self):
        engine = ThermalEngine(paper_platform(2, n_levels=2, t_max_c=65.0))
        assert engine.take_hint("choose_m", (0.02, 8, 1)) is None
        engine.set_hint("choose_m", (0.02, 8, 1), "payload")
        assert engine.take_hint("choose_m", (0.02, 8, 1)) == "payload"
        assert engine.take_hint("choose_m", (0.02, 8, 1)) is None

    def test_certify_grid_matches_scalar(self, rng):
        from repro.safety.certificate import certify, certify_grid

        items = []
        for n in (2, 3):
            engine = ThermalEngine(paper_platform(n, n_levels=2, t_max_c=65.0))
            items.append((engine, random_schedule(n, rng)))
            items.append(
                (engine, random_stepup_schedule(n, rng), {"claimed_feasible": True})
            )
        grid = certify_grid(items)
        for item, gc in zip(items, grid):
            claims = dict(item[2]) if len(item) > 2 else {}
            sc = certify(item[0], item[1], **claims)
            assert gc.peak_theta == pytest.approx(sc.peak_theta, abs=PARITY)
            assert gc.method_peaks.keys() == sc.method_peaks.keys()
            assert gc.accepted == sc.accepted
            assert gc.reasons == sc.reasons

    def test_adaptive_reference_sampling(self, rng):
        from repro.safety.certificate import SafetyCertificate, certify

        engine = ThermalEngine(paper_platform(2, n_levels=2, t_max_c=65.0))
        # A cool schedule sits far below T_max: the oracle subsamples.
        sched = constant_schedule([1.0, 1.0], period=0.02)
        fixed = certify(
            engine, sched, reference=True, adaptive_reference=False,
            reference_samples=64,
        )
        adaptive = certify(engine, sched, reference=True, reference_samples=64)
        assert fixed.reference_samples_used == 64
        assert adaptive.reference_samples_used == 16
        assert adaptive.accepted
        roundtrip = SafetyCertificate.from_dict(adaptive.as_dict())
        assert roundtrip.reference_samples_used == 16
        assert fixed.method_peaks["reference"] == pytest.approx(
            adaptive.method_peaks["reference"], abs=1e-3
        )

    def test_perturbed_peak_batch(self, rng):
        from repro.safety.faults import FaultSpec, perturbed_peak, perturbed_peak_batch

        engine = ThermalEngine(paper_platform(3, n_levels=2, t_max_c=65.0))
        sched = random_stepup_schedule(3, rng, max_segments=3)
        specs = [
            FaultSpec(),
            FaultSpec(sensor_noise_sigma=0.5),
            FaultSpec(stuck_core=0, stuck_level=-1),
            FaultSpec(ambient_drift_k=2.0),
        ]
        batch = perturbed_peak_batch(engine, sched, specs)
        for spec, peak in zip(specs, batch):
            assert peak == pytest.approx(
                perturbed_peak(engine, sched, spec), abs=PARITY
            )
        assert perturbed_peak_batch(engine, sched, []) == []

    def test_comparison_grid_dispatch_equivalence(self):
        from repro.experiments.comparison import build_grid

        kwargs = dict(
            core_counts=(2, 3),
            level_counts=(2,),
            t_max_values=(65.0,),
            approaches=("AO",),
            m_cap=8,
        )
        plain = build_grid(grid_dispatch=False, **kwargs)
        dispatched = build_grid(grid_dispatch=True, **kwargs)
        assert len(plain.cells) == len(dispatched.cells)
        for a, b in zip(plain.cells, dispatched.cells):
            ra, rb = a.results["AO"], b.results["AO"]
            assert rb.throughput == pytest.approx(ra.throughput, abs=1e-12)
            assert rb.peak_theta == pytest.approx(ra.peak_theta, abs=1e-12)
            assert rb.schedule == ra.schedule
