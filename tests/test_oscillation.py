"""Tests for the section-V oscillation machinery."""

import numpy as np
import pytest

from repro.algorithms.continuous import continuous_assignment
from repro.algorithms.oscillation import (
    adjusted_high_ratios,
    build_oscillating_schedule,
    choose_m,
    effective_throughput,
    max_m_bound,
    plan_modes,
)
from repro.errors import SolverError
from repro.platform import paper_platform
from repro.schedule.properties import is_step_up, throughput


@pytest.fixture(scope="module")
def planned():
    p = paper_platform(3, n_levels=2, t_max_c=65.0)
    cont = continuous_assignment(p)
    return p, plan_modes(p, cont.voltages)


class TestPlanModes:
    def test_targets_reproduced(self, planned):
        p, plan = planned
        realized = plan.v_low * (1 - plan.high_ratio) + plan.v_high * plan.high_ratio
        assert np.allclose(realized, plan.target_voltages, atol=1e-12)

    def test_table2_ratios(self, planned):
        _, plan = planned
        assert plan.high_ratio == pytest.approx([0.8693, 0.8211, 0.8693], abs=1e-4)

    def test_all_cores_oscillating(self, planned):
        _, plan = planned
        assert plan.oscillating.all()

    def test_exact_level_not_oscillating(self):
        p = paper_platform(3, n_levels=2, t_max_c=65.0)
        plan = plan_modes(p, np.array([0.6, 1.3, 0.9]))
        assert not plan.oscillating[0]  # exact low level
        assert not plan.oscillating[1]  # exact high level
        assert plan.oscillating[2]


class TestAdjustedRatios:
    def test_zero_tau_no_change(self, planned):
        p, plan = planned
        p0 = paper_platform(3, n_levels=2, t_max_c=65.0, tau=0.0)
        ratios = adjusted_high_ratios(p0, plan, m=10, period=0.02)
        assert np.allclose(ratios, plan.high_ratio)

    def test_inflation_grows_with_m(self, planned):
        p, plan = planned
        r1 = adjusted_high_ratios(p, plan, m=1, period=0.02)
        r5 = adjusted_high_ratios(p, plan, m=5, period=0.02)
        assert np.all(r5 >= r1)
        assert np.all(r1 >= plan.high_ratio)

    def test_matches_delta_formula(self, planned):
        p, plan = planned
        m, period = 3, 0.02
        ratios = adjusted_high_ratios(p, plan, m, period)
        for i in range(3):
            delta = p.overhead.delta(plan.v_low[i], plan.v_high[i])
            expected = min(1.0, plan.high_ratio[i] + m * delta / period)
            assert ratios[i] == pytest.approx(expected)


class TestMaxMBound:
    def test_bound_positive_and_capped(self, planned):
        p, plan = planned
        m = max_m_bound(p, plan, period=0.02, cap=64)
        assert 1 <= m <= 64

    def test_uncapped_matches_overhead_math(self, planned):
        p, plan = planned
        m = max_m_bound(p, plan, period=0.02, cap=10**9)
        expected = min(
            p.overhead.max_m_for_core(
                (1 - plan.high_ratio[i]) * 0.02, plan.v_low[i], plan.v_high[i]
            )
            for i in range(3)
        )
        assert m == expected


class TestBuildSchedule:
    def test_cycle_period(self, planned):
        _, plan = planned
        s = build_oscillating_schedule(plan, plan.high_ratio, 0.02, 4)
        assert s.period == pytest.approx(0.005)
        assert is_step_up(s)

    def test_invalid_m(self, planned):
        _, plan = planned
        with pytest.raises(SolverError):
            build_oscillating_schedule(plan, plan.high_ratio, 0.02, 0)


class TestChooseM:
    def test_returns_scan_history(self, planned):
        p, plan = planned
        m_opt, sched, history = choose_m(p, plan, period=0.02, m_cap=16)
        assert len(history) >= 1
        ms = [m for m, _ in history]
        assert ms == sorted(ms)
        assert m_opt in ms
        # The chosen m minimizes the scanned peaks.
        peaks = dict(history)
        assert peaks[m_opt] == pytest.approx(min(p_ for _, p_ in history))

    def test_no_overhead_prefers_largest_m(self):
        # Without transition cost, Theorem 5 makes more oscillation always
        # at least as good.
        p = paper_platform(3, n_levels=2, t_max_c=65.0, tau=0.0)
        cont = continuous_assignment(p)
        plan = plan_modes(p, cont.voltages)
        m_opt, _, history = choose_m(p, plan, period=0.02, m_cap=8)
        peaks = [pk for _, pk in history]
        assert np.all(np.diff(peaks) <= 1e-9)
        assert m_opt == history[-1][0]

    def test_m_step_coarsens_scan(self, planned):
        p, plan = planned
        _, _, history = choose_m(p, plan, period=0.02, m_cap=16, m_step=4)
        assert [m for m, _ in history] == [1, 5, 9, 13]


class TestEffectiveThroughput:
    def test_no_overhead_equals_eq5(self, planned):
        _, plan = planned
        p0 = paper_platform(3, n_levels=2, t_max_c=65.0, tau=0.0)
        s = build_oscillating_schedule(plan, plan.high_ratio, 0.02, 2)
        assert effective_throughput(s, p0) == pytest.approx(throughput(s))

    def test_overhead_reduces_throughput(self, planned):
        p, plan = planned
        s = build_oscillating_schedule(plan, plan.high_ratio, 0.02, 2)
        assert effective_throughput(s, p) < throughput(s)

    def test_adjusted_ratios_restore_target(self, planned):
        # The whole point of the delta compensation: with inflated ratios,
        # the net throughput matches the unadjusted schedule's gross one.
        p, plan = planned
        m, period = 4, 0.02
        ratios = adjusted_high_ratios(p, plan, m, period)
        sched = build_oscillating_schedule(plan, ratios, period, m)
        target = throughput(
            build_oscillating_schedule(plan, plan.high_ratio, period, m)
        )
        net = effective_throughput(sched, p)
        assert net == pytest.approx(target, abs=1e-6)
