"""Tests for the fixed-workload peak minimization (dual problem)."""

import numpy as np
import pytest

from repro.algorithms.minpeak import minimize_peak
from repro.errors import SolverError
from repro.platform import paper_platform
from repro.schedule.properties import core_workloads, is_step_up


@pytest.fixture(scope="module")
def p3():
    return paper_platform(3, n_levels=2, t_max_c=65.0)


class TestMinimizePeak:
    def test_realizes_target_workload(self, p3):
        targets = np.array([0.9, 0.8, 1.1])
        r = minimize_peak(p3, targets, period=0.02)
        # Net of transition compensation the per-cycle work matches targets.
        work = core_workloads(r.schedule) / r.schedule.period
        # Overhead inflation makes gross work slightly exceed the target.
        assert np.all(work >= targets - 1e-9)
        assert np.all(work <= targets + 0.02)

    def test_emits_stepup(self, p3):
        r = minimize_peak(p3, [0.9, 0.9, 0.9])
        assert is_step_up(r.schedule)

    def test_peak_above_constant_bound(self, p3):
        r = minimize_peak(p3, [1.0, 0.7, 1.2])
        assert r.peak.value >= r.constant_bound_theta - 1e-6

    def test_exact_levels_get_constant_schedule(self, p3):
        r = minimize_peak(p3, [0.6, 1.3, 0.6])
        assert r.m == 1
        assert r.schedule.n_intervals == 1
        # Constant schedule at exact levels achieves the bound exactly.
        assert r.peak.value == pytest.approx(r.constant_bound_theta, abs=1e-9)

    def test_idle_cores_supported(self, p3):
        r = minimize_peak(p3, [0.9, 0.0, 0.9])
        volts = r.schedule.voltage_matrix
        assert np.all(volts[:, 1] == 0.0)
        # Idling the middle core must run cooler than loading it.
        r_full = minimize_peak(p3, [0.9, 0.9, 0.9])
        assert r.peak.value < r_full.peak.value

    def test_more_oscillation_cooler(self, p3):
        # Compare the chosen-m result against a forced m=1 build.
        from repro.algorithms.oscillation import (
            build_oscillating_schedule,
            plan_modes,
        )
        from repro.thermal.peak import peak_temperature

        targets = np.array([1.0, 1.0, 1.0])
        r = minimize_peak(p3, targets, period=0.02)
        plan = plan_modes(p3, targets)
        m1 = build_oscillating_schedule(plan, plan.high_ratio, 0.02, 1)
        peak_m1 = peak_temperature(p3.model, m1).value
        assert r.peak.value <= peak_m1 + 1e-9
        assert r.m >= 1

    def test_out_of_range_rejected(self, p3):
        with pytest.raises(SolverError):
            minimize_peak(p3, [1.5, 0.9, 0.9])
        with pytest.raises(SolverError):
            minimize_peak(p3, [0.5, 0.9, 0.9])
        with pytest.raises(SolverError):
            minimize_peak(p3, [0.9, 0.9])  # wrong shape

    def test_summary_text(self, p3):
        text = minimize_peak(p3, [0.9, 0.9, 0.9]).summary()
        assert "min-peak" in text and "penalty" in text
