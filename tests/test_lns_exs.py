"""Tests for the LNS and EXS baselines."""

import numpy as np
import pytest

from repro.algorithms.continuous import continuous_assignment
from repro.algorithms.exs import exs, exs_pruned
from repro.algorithms.lns import lns
from repro.errors import InfeasibleError
from repro.platform import paper_platform


class TestLNS:
    def test_motivation_example(self):
        p = paper_platform(3, n_levels=2, t_max_c=65.0)
        r = lns(p)
        assert r.throughput == pytest.approx(0.6)  # the paper's 0.6
        assert r.feasible

    def test_rounds_down_per_core(self):
        p = paper_platform(3, n_levels=5, t_max_c=65.0)
        cont = continuous_assignment(p)
        r = lns(p)
        volts = r.schedule.voltage_matrix[0]
        for v_c, v_r in zip(cont.voltages, volts):
            assert v_r <= v_c + 1e-9
            assert p.ladder.contains(v_r)

    def test_always_feasible(self):
        for n in (2, 3, 6, 9):
            for lv in (2, 5):
                p = paper_platform(n, n_levels=lv, t_max_c=55.0)
                assert lns(p).feasible

    def test_more_levels_never_worse(self):
        p2 = paper_platform(3, n_levels=2, t_max_c=60.0)
        p5 = paper_platform(3, n_levels=5, t_max_c=60.0)
        assert lns(p5).throughput >= lns(p2).throughput - 1e-12


class TestEXS:
    def test_motivation_example(self):
        p = paper_platform(3, n_levels=2, t_max_c=65.0)
        r = exs(p)
        assert r.throughput == pytest.approx(0.8333, abs=1e-4)  # paper: 0.83
        volts = sorted(r.schedule.voltage_matrix[0])
        assert volts == pytest.approx([0.6, 0.6, 1.3])

    def test_feasibility_of_result(self):
        p = paper_platform(6, n_levels=3, t_max_c=55.0)
        r = exs(p)
        theta = p.model.steady_state_cores(r.schedule.voltage_matrix[0])
        assert theta.max() <= p.theta_max + 1e-9

    def test_beats_or_matches_lns(self):
        for n in (2, 3, 6):
            for lv in (2, 3, 4):
                p = paper_platform(n, n_levels=lv, t_max_c=55.0)
                assert exs(p).throughput >= lns(p).throughput - 1e-12

    def test_infeasible_platform_raises(self):
        # Threshold below what even all-lowest can satisfy.
        p = paper_platform(9, n_levels=2, t_max_c=37.0)
        theta = p.model.steady_state_cores(np.full(9, 0.6))
        if theta.max() <= p.theta_max:
            pytest.skip("all-low happens to be feasible at this threshold")
        with pytest.raises(InfeasibleError):
            exs(p)

    def test_evaluation_count(self):
        p = paper_platform(3, n_levels=4, t_max_c=55.0)
        r = exs(p)
        assert r.details["evaluations"] == 4**3


class TestEXSPruned:
    @pytest.mark.parametrize("n,lv", [(2, 2), (3, 3), (3, 5), (6, 2), (6, 3)])
    def test_matches_naive(self, n, lv):
        p = paper_platform(n, n_levels=lv, t_max_c=55.0)
        naive = exs(p)
        pruned = exs_pruned(p)
        assert pruned.throughput == pytest.approx(naive.throughput)
        assert pruned.peak_theta <= p.theta_max + 1e-9

    def test_matches_naive_high_threshold(self):
        p = paper_platform(3, n_levels=5, t_max_c=65.0)
        assert exs_pruned(p).throughput == pytest.approx(exs(p).throughput)

    def test_prunes_evaluations(self):
        p = paper_platform(6, n_levels=4, t_max_c=50.0)
        naive = exs(p)
        pruned = exs_pruned(p)
        assert pruned.details["evaluations"] < naive.details["evaluations"]

    def test_infeasible_raises(self):
        p = paper_platform(9, n_levels=2, t_max_c=37.0)
        theta = p.model.steady_state_cores(np.full(9, 0.6))
        if theta.max() <= p.theta_max:
            pytest.skip("all-low happens to be feasible at this threshold")
        with pytest.raises(InfeasibleError):
            exs_pruned(p)
