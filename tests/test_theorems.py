"""Property-based verification of the paper's Theorems 1-5 and Property 1.

Each theorem is exercised over randomized schedules/parameters via
hypothesis, using the executable checks in :mod:`repro.analysis.theorems`.
All checks run on the calibrated single-layer model — the paper's own
model class, where the inequalities are exact (see EXPERIMENTS.md for the
stacked-topology caveat on Theorem 1).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.theorems import (
    check_cooling_property,
    check_theorem1,
    check_theorem2,
    check_theorem3,
    check_theorem4,
    check_theorem5,
)
from repro.errors import ScheduleError
from repro.schedule.builders import random_schedule, random_stepup_schedule

LEVELS = (0.6, 0.8, 1.0, 1.2, 1.3)


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


class TestTheorem1:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_stepup_peak_at_end(self, model3_session, seed):
        s = random_stepup_schedule(3, _rng(seed), levels=LEVELS, period=0.05)
        report = check_theorem1(model3_session, s)
        assert report.holds, f"{report.lhs} > {report.rhs}"

    def test_rejects_non_stepup(self, model3_session):
        from repro.schedule.builders import two_mode_schedule

        s = two_mode_schedule([0.6] * 3, [1.3] * 3, [0.5] * 3, 0.01,
                              high_first=True)
        with pytest.raises(ScheduleError):
            check_theorem1(model3_session, s)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_long_period_stepup(self, model3_session, seed):
        # Periods far above the thermal time constants: quasi-steady regime.
        s = random_stepup_schedule(3, _rng(seed), levels=LEVELS, period=2.0)
        assert check_theorem1(model3_session, s).holds


class TestTheorem2:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_stepup_bounds_random_schedule(self, model3_session, seed):
        s = random_schedule(3, _rng(seed), levels=LEVELS, period=0.05)
        report = check_theorem2(model3_session, s)
        assert report.holds, f"{report.lhs} > {report.rhs}"

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_bound_on_two_cores(self, model2_session, seed):
        s = random_schedule(2, _rng(seed), levels=LEVELS, period=0.1,
                            max_segments=4)
        assert check_theorem2(model2_session, s).holds


class TestTheorem3:
    @given(
        v_const=st.floats(0.65, 1.25),
        spread=st.floats(0.02, 0.3),
        period=st.floats(0.005, 0.2),
        core=st.integers(0, 2),
    )
    @settings(max_examples=40, deadline=None)
    def test_constant_beats_two_speed(self, model3_session, v_const, spread,
                                      period, core):
        v_low = max(0.6, v_const - spread)
        v_high = min(1.3, v_const + spread)
        if v_high - v_low < 1e-3:
            return
        report = check_theorem3(
            model3_session, v_const, v_low, v_high, period, core=core
        )
        assert report.holds, f"{report.lhs} > {report.rhs}"

    def test_validation(self, model3_session):
        with pytest.raises(ScheduleError):
            check_theorem3(model3_session, 0.9, 1.0, 1.2, 0.01)


class TestTheorem4:
    @given(
        v_target=st.floats(0.85, 1.1),
        inner_spread=st.floats(0.02, 0.12),
        extra=st.floats(0.02, 0.15),
        period=st.floats(0.005, 0.1),
    )
    @settings(max_examples=40, deadline=None)
    def test_neighboring_beats_wider(self, model3_session, v_target,
                                     inner_spread, extra, period):
        li = max(0.6, v_target - inner_spread)
        hi = min(1.3, v_target + inner_spread)
        lo = max(0.6, li - extra)
        ho = min(1.3, hi + extra)
        if not (lo <= li <= v_target <= hi <= ho) or hi - li < 1e-3:
            return
        report = check_theorem4(
            model3_session, (li, hi), (lo, ho), v_target, period
        )
        assert report.holds, f"{report.lhs} > {report.rhs}"

    def test_validation(self, model3_session):
        with pytest.raises(ScheduleError):
            check_theorem4(model3_session, (0.8, 1.0), (0.9, 1.2), 0.9, 0.01)


class TestTheorem5:
    @given(seed=st.integers(0, 10_000), m=st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_peak_decreases_with_m(self, model3_session, seed, m):
        s = random_stepup_schedule(3, _rng(seed), levels=LEVELS, period=0.1)
        report = check_theorem5(model3_session, s, m)
        assert report.holds, f"{report.lhs} > {report.rhs}"

    @given(seed=st.integers(0, 1_000))
    @settings(max_examples=10, deadline=None)
    def test_full_monotone_chain(self, model3_session, seed):
        from repro.schedule.transforms import m_oscillate
        from repro.thermal.peak import stepup_peak_temperature

        s = random_stepup_schedule(3, _rng(seed), levels=LEVELS, period=0.2)
        peaks = [
            stepup_peak_temperature(
                model3_session, m_oscillate(s, m), check=False
            ).value
            for m in range(1, 9)
        ]
        assert np.all(np.diff(peaks) <= 1e-9)

    def test_rejects_non_stepup(self, model3_session):
        from repro.schedule.builders import two_mode_schedule

        s = two_mode_schedule([0.6] * 3, [1.3] * 3, [0.5] * 3, 0.01,
                              high_first=True)
        with pytest.raises(ScheduleError):
            check_theorem5(model3_session, s, 2)


class TestCoolingProperty:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_decay_from_steady_states(self, model3_session, seed):
        # From any reachable (steady-state) temperature, all-off cooling is
        # monotone on every node.
        rng = _rng(seed)
        v = rng.choice(np.asarray(LEVELS), size=3)
        theta0 = model3_session.steady_state(v)
        report = check_cooling_property(model3_session, theta0, horizon=0.2)
        assert report.holds, f"max increase {report.lhs}"

    def test_rejects_below_ambient_start(self, model3_session):
        with pytest.raises(ScheduleError):
            check_cooling_property(
                model3_session, -np.ones(model3_session.n_nodes), horizon=0.1
            )


# Session-scoped model fixtures local to this module (hypothesis requires
# function-scoped fixtures not to be reused across examples, so we alias the
# session fixtures under distinct names).
@pytest.fixture(scope="session")
def model3_session(model3):
    return model3


@pytest.fixture(scope="session")
def model2_session(model2):
    return model2
