"""Tests for transient simulation, periodic steady state, and the oracle."""

import numpy as np
import pytest

from repro.errors import ThermalModelError
from repro.schedule.builders import (
    constant_schedule,
    random_schedule,
    two_mode_schedule,
)
from repro.thermal.periodic import periodic_steady_state, stable_trace
from repro.thermal.reference import reference_peak, reference_simulate
from repro.thermal.transient import simulate_piecewise, simulate_schedule_period


class TestSimulatePiecewise:
    def test_trace_shapes(self, model3):
        s = two_mode_schedule([0.6] * 3, [1.3] * 3, [0.5] * 3, 0.01)
        tr = simulate_piecewise(model3, s, periods=2, samples_per_interval=8)
        assert tr.temperatures.shape == (2 * s.n_intervals * 8, model3.n_nodes)
        assert tr.times.shape[0] == tr.temperatures.shape[0]
        assert np.all(np.diff(tr.times) >= 0)

    def test_end_matches_schedule_period(self, model3):
        s = two_mode_schedule([0.6] * 3, [1.3] * 3, [0.3, 0.5, 0.7], 0.02)
        tr = simulate_piecewise(model3, s, periods=1)
        direct = simulate_schedule_period(model3, s, np.zeros(model3.n_nodes))
        assert np.allclose(tr.end_temperature, direct, atol=1e-10)

    def test_starts_at_theta0(self, model3, rng):
        theta0 = rng.uniform(0, 10, model3.n_nodes)
        s = constant_schedule([0.8] * 3, period=0.01)
        tr = simulate_piecewise(model3, s, theta0=theta0)
        assert np.allclose(tr.temperatures[0], theta0)

    def test_validation(self, model3):
        s = constant_schedule([0.8] * 3, period=0.01)
        with pytest.raises(ThermalModelError):
            simulate_piecewise(model3, s, periods=0)
        with pytest.raises(ThermalModelError):
            simulate_piecewise(model3, s, samples_per_interval=1)

    def test_core_trace_selects_cores(self, model6_stacked):
        s = constant_schedule([1.0] * 6, period=0.1)
        tr = simulate_piecewise(model6_stacked, s)
        assert tr.core_trace(model6_stacked).shape[1] == 6


class TestPeriodicSteadyState:
    def test_fixed_point(self, model3):
        s = two_mode_schedule([0.6] * 3, [1.3] * 3, [0.4, 0.7, 0.2], 0.015)
        sol = periodic_steady_state(model3, s)
        start, end = sol.start_temperature, sol.end_temperature
        assert np.allclose(start, end, atol=1e-9)
        # Propagating once more from the fixed point returns to it.
        again = simulate_schedule_period(model3, s, start)
        assert np.allclose(again, start, atol=1e-9)

    def test_constant_schedule_equals_steady_state(self, model3):
        v = [1.1, 0.7, 0.9]
        s = constant_schedule(v, period=0.05)
        sol = periodic_steady_state(model3, s)
        assert np.allclose(sol.start_temperature, model3.steady_state(v), atol=1e-9)

    def test_matches_brute_force_settling(self, model3, rng):
        s = random_schedule(3, rng, levels=(0.6, 1.0, 1.3), period=0.02)
        sol = periodic_steady_state(model3, s)
        theta = np.zeros(model3.n_nodes)
        for _ in range(400):  # 400 * 20 ms = 8 s >> slowest tau
            theta = simulate_schedule_period(model3, s, theta)
        assert np.allclose(theta, sol.start_temperature, atol=1e-7)

    def test_boundary_temperatures_consistent(self, model3):
        s = two_mode_schedule([0.6] * 3, [1.3] * 3, [0.5] * 3, 0.01)
        sol = periodic_steady_state(model3, s)
        theta = sol.start_temperature
        for q, iv in enumerate(s.intervals, start=1):
            theta = model3.propagate(theta, iv.length, iv.voltages)
            assert np.allclose(theta, sol.boundary_temperatures[q], atol=1e-10)

    def test_interval_solutions_stitch(self, model3):
        s = two_mode_schedule([0.6] * 3, [1.3] * 3, [0.3] * 3, 0.01)
        sol = periodic_steady_state(model3, s)
        pieces = sol.interval_solutions(model3)
        for q, piece in enumerate(pieces):
            assert np.allclose(
                piece.end_temperature(), sol.boundary_temperatures[q + 1], atol=1e-9
            )

    def test_stable_trace_periodicity(self, model3):
        s = two_mode_schedule([0.6] * 3, [1.3] * 3, [0.6] * 3, 0.02)
        tr = stable_trace(model3, s, samples_per_interval=16)
        assert np.allclose(tr.temperatures[0], tr.temperatures[-1], atol=1e-8)


class TestReferenceOracle:
    def test_matches_analytic_engine(self, model3, rng):
        s = random_schedule(3, rng, levels=(0.6, 0.9, 1.3), period=0.03)
        theta0 = rng.uniform(0, 20, model3.n_nodes)
        analytic = simulate_piecewise(model3, s, theta0=theta0, periods=2,
                                      samples_per_interval=8)
        numeric = reference_simulate(model3, s, theta0=theta0, periods=2,
                                     samples_per_interval=8)
        assert np.allclose(analytic.end_temperature, numeric.end_temperature,
                           atol=1e-6)
        assert np.allclose(analytic.temperatures, numeric.temperatures, atol=1e-5)

    def test_matches_on_stacked_topology(self, model6_stacked, rng):
        s = random_schedule(6, rng, levels=(0.6, 1.3), period=0.5, max_segments=2)
        analytic = simulate_piecewise(model6_stacked, s, periods=1)
        numeric = reference_simulate(model6_stacked, s, periods=1)
        assert np.allclose(analytic.end_temperature, numeric.end_temperature,
                           atol=1e-6)

    def test_reference_peak_agrees_with_stable_peak(self, model3):
        from repro.thermal.peak import peak_temperature

        s = two_mode_schedule([0.6] * 3, [1.3] * 3, [0.5, 0.3, 0.7], 0.02)
        oracle = reference_peak(model3, s, samples_per_interval=128)
        fast = peak_temperature(model3, s).value
        assert oracle == pytest.approx(fast, abs=2e-3)

    def test_validation(self, model3):
        s = constant_schedule([0.8] * 3, period=0.01)
        with pytest.raises(ThermalModelError):
            reference_simulate(model3, s, periods=0)
