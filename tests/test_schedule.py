"""Unit tests for schedule primitives, builders and properties."""

import numpy as np
import pytest

from repro.errors import ScheduleError
from repro.schedule.builders import (
    constant_schedule,
    from_core_timelines,
    phase_schedule,
    random_schedule,
    random_stepup_schedule,
    two_mode_schedule,
)
from repro.schedule.intervals import CoreSegment, StateInterval
from repro.schedule.periodic import PeriodicSchedule
from repro.schedule.properties import (
    core_workloads,
    is_step_up,
    same_workload,
    throughput,
)


class TestStateInterval:
    def test_basic(self):
        iv = StateInterval(length=0.5, voltages=(0.6, 1.3))
        assert iv.n_cores == 2

    @pytest.mark.parametrize("length", [0.0, -1.0, float("nan"), float("inf")])
    def test_bad_length(self, length):
        with pytest.raises(ScheduleError):
            StateInterval(length=length, voltages=(0.6,))

    def test_bad_voltages(self):
        with pytest.raises(ScheduleError):
            StateInterval(length=1.0, voltages=(-0.1,))
        with pytest.raises(ScheduleError):
            StateInterval(length=1.0, voltages=())

    def test_with_voltage(self):
        iv = StateInterval(length=1.0, voltages=(0.6, 0.6))
        iv2 = iv.with_voltage(1, 1.3)
        assert iv2.voltages == (0.6, 1.3)
        assert iv.voltages == (0.6, 0.6)  # original untouched
        with pytest.raises(ScheduleError):
            iv.with_voltage(5, 1.0)

    def test_with_length(self):
        iv = StateInterval(length=1.0, voltages=(0.6,))
        assert iv.with_length(0.25).length == 0.25


class TestPeriodicSchedule:
    def test_shape_accessors(self):
        s = PeriodicSchedule(
            (
                StateInterval(0.3, (0.6, 0.6)),
                StateInterval(0.7, (1.3, 0.6)),
            )
        )
        assert s.n_cores == 2
        assert s.n_intervals == 2
        assert s.period == pytest.approx(1.0)
        assert np.allclose(s.lengths, [0.3, 0.7])
        assert np.allclose(s.boundaries, [0.0, 0.3, 1.0])
        assert s.voltage_matrix.shape == (2, 2)

    def test_rejects_mixed_core_counts(self):
        with pytest.raises(ScheduleError):
            PeriodicSchedule(
                (StateInterval(1.0, (0.6,)), StateInterval(1.0, (0.6, 0.6)))
            )

    def test_rejects_empty(self):
        with pytest.raises(ScheduleError):
            PeriodicSchedule(())

    def test_voltage_at_wraps(self):
        s = PeriodicSchedule(
            (StateInterval(0.5, (0.6,)), StateInterval(0.5, (1.3,)))
        )
        assert s.voltage_at(0.25)[0] == 0.6
        assert s.voltage_at(0.75)[0] == 1.3
        assert s.voltage_at(1.25)[0] == 0.6  # wrapped

    def test_core_timeline_merges(self):
        s = PeriodicSchedule(
            (
                StateInterval(0.2, (0.6, 0.6)),
                StateInterval(0.3, (0.6, 1.3)),
                StateInterval(0.5, (1.3, 1.3)),
            )
        )
        tl0 = s.core_timeline(0)
        assert [(seg.length, seg.voltage) for seg in tl0] == [(0.5, 0.6), (0.5, 1.3)]
        tl1 = s.core_timeline(1, merge=False)
        assert len(tl1) == 3

    def test_with_interval(self):
        s = constant_schedule([0.6, 0.6], period=1.0)
        s2 = s.with_interval(0, StateInterval(1.0, (1.3, 1.3)))
        assert s2.voltage_matrix[0, 0] == 1.3
        with pytest.raises(ScheduleError):
            s.with_interval(3, StateInterval(1.0, (0.6, 0.6)))

    def test_scaled(self):
        s = two_mode_schedule([0.6, 0.6], [1.3, 1.3], [0.5, 0.25], 1.0)
        s2 = s.scaled(0.5)
        assert s2.period == pytest.approx(0.5)
        assert np.allclose(s2.voltage_matrix, s.voltage_matrix)
        with pytest.raises(ScheduleError):
            s.scaled(0.0)

    def test_rotation_preserves_workload(self):
        s = two_mode_schedule([0.6, 0.6], [1.3, 1.3], [0.3, 0.7], 1.0)
        r = s.rotated(0.37)
        assert same_workload(s, r)

    def test_rotation_identity(self):
        s = constant_schedule([1.0], period=2.0)
        assert s.rotated(0.0) is s
        r = s.rotated(2.0)  # full period = identity
        assert r.period == pytest.approx(2.0)


class TestBuilders:
    def test_from_core_timelines_breakpoints(self):
        s = from_core_timelines(
            [
                [(0.4, 0.6), (0.6, 1.3)],
                [(0.5, 0.6), (0.5, 1.3)],
            ]
        )
        assert s.n_intervals == 3  # cuts at 0.4 and 0.5
        assert np.allclose(s.lengths, [0.4, 0.1, 0.5])
        assert np.allclose(s.voltage_matrix[1], [1.3, 0.6])

    def test_from_core_timelines_period_mismatch(self):
        with pytest.raises(ScheduleError):
            from_core_timelines([[(1.0, 0.6)], [(0.9, 0.6)]])

    def test_from_core_timelines_empty(self):
        with pytest.raises(ScheduleError):
            from_core_timelines([])
        with pytest.raises(ScheduleError):
            from_core_timelines([[]])

    def test_constant_schedule(self):
        s = constant_schedule([0.9, 1.1], period=0.5)
        assert s.n_intervals == 1
        assert s.period == pytest.approx(0.5)

    def test_two_mode_is_step_up(self):
        s = two_mode_schedule([0.6, 0.6, 0.6], [1.3, 1.3, 1.3],
                              [0.2, 0.8, 0.5], 0.02)
        assert is_step_up(s)

    def test_two_mode_workload(self):
        s = two_mode_schedule([0.6], [1.3], [0.25], 1.0)
        w = core_workloads(s)
        assert w[0] == pytest.approx(0.75 * 0.6 + 0.25 * 1.3)

    def test_two_mode_degenerate_ratios(self):
        s = two_mode_schedule([0.6, 0.6], [1.3, 1.3], [0.0, 1.0], 1.0)
        # core 0 constant low, core 1 constant high -> single interval
        assert s.n_intervals == 1
        assert tuple(s.voltage_matrix[0]) == (0.6, 1.3)

    def test_two_mode_high_first(self):
        s = two_mode_schedule([0.6], [1.3], [0.5], 1.0, high_first=True)
        assert s.voltage_matrix[0, 0] == 1.3
        assert not is_step_up(s)

    def test_two_mode_validation(self):
        with pytest.raises(ScheduleError):
            two_mode_schedule([0.6], [1.3], [1.5], 1.0)
        with pytest.raises(ScheduleError):
            two_mode_schedule([1.3], [0.6], [0.5], 1.0)
        with pytest.raises(ScheduleError):
            two_mode_schedule([0.6], [1.3], [0.5], 0.0)

    def test_phase_schedule_window(self):
        s = phase_schedule([0.6], [1.3], high_length=0.3, high_start=0.2, period=1.0)
        assert s.voltage_at(0.1)[0] == 0.6
        assert s.voltage_at(0.35)[0] == 1.3
        assert s.voltage_at(0.6)[0] == 0.6

    def test_phase_schedule_wraps(self):
        s = phase_schedule([0.6], [1.3], high_length=0.4, high_start=0.8, period=1.0)
        assert s.voltage_at(0.9)[0] == 1.3
        assert s.voltage_at(0.1)[0] == 1.3  # wrapped tail
        assert s.voltage_at(0.5)[0] == 0.6

    def test_phase_schedule_degenerate(self):
        allhigh = phase_schedule([0.6], [1.3], high_length=1.0, high_start=0.4, period=1.0)
        assert np.all(allhigh.voltage_matrix == 1.3)
        alllow = phase_schedule([0.6], [1.3], high_length=0.0, high_start=0.4, period=1.0)
        assert np.all(alllow.voltage_matrix == 0.6)

    def test_phase_schedule_validation(self):
        with pytest.raises(ScheduleError):
            phase_schedule([0.6], [1.3], high_length=2.0, high_start=0.0, period=1.0)
        with pytest.raises(ScheduleError):
            phase_schedule([0.6], [1.3], high_length=0.5, high_start=0.0, period=0.0)

    def test_random_schedule_reproducible(self):
        a = random_schedule(3, np.random.default_rng(7))
        b = random_schedule(3, np.random.default_rng(7))
        assert np.allclose(a.voltage_matrix, b.voltage_matrix)
        assert np.allclose(a.lengths, b.lengths)

    def test_random_stepup_is_step_up(self):
        for seed in range(10):
            s = random_stepup_schedule(4, np.random.default_rng(seed))
            assert is_step_up(s)

    def test_random_schedule_validation(self):
        with pytest.raises(ScheduleError):
            random_schedule(0, np.random.default_rng(0))


class TestProperties:
    def test_throughput_constant(self):
        s = constant_schedule([0.8, 1.2], period=3.0)
        assert throughput(s) == pytest.approx(1.0)

    def test_throughput_is_mean_voltage(self):
        s = two_mode_schedule([0.6, 0.6], [1.3, 1.3], [0.5, 0.0], 1.0)
        assert throughput(s) == pytest.approx((0.95 + 0.6) / 2)

    def test_throughput_custom_speed_map(self):
        s = constant_schedule([1.0, 1.0], period=1.0)
        assert throughput(s, speed_of=lambda v: 2 * v) == pytest.approx(2.0)

    def test_same_workload_detects_difference(self):
        a = two_mode_schedule([0.6], [1.3], [0.5], 1.0)
        b = two_mode_schedule([0.6], [1.3], [0.6], 1.0)
        assert not same_workload(a, b)

    def test_same_workload_requires_same_period(self):
        a = constant_schedule([1.0], period=1.0)
        b = constant_schedule([1.0], period=2.0)
        assert not same_workload(a, b)

    def test_is_step_up_examples(self):
        up = two_mode_schedule([0.6], [1.3], [0.5], 1.0)
        down = two_mode_schedule([0.6], [1.3], [0.5], 1.0, high_first=True)
        assert is_step_up(up) and not is_step_up(down)
