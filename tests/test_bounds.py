"""Tests for the Theorem-2 screening utilities."""

import numpy as np
import pytest

from repro.analysis.bounds import (
    Screen,
    classify_schedule,
    prune_candidates,
    stepup_bound,
)
from repro.schedule.builders import phase_schedule, random_schedule
from repro.thermal.peak import peak_temperature


def _candidates(n, rng, period=0.05):
    return [
        random_schedule(3, rng, levels=(0.6, 0.8, 1.0, 1.2, 1.3), period=period)
        for _ in range(n)
    ]


class TestStepupBound:
    def test_bounds_true_peak(self, model3, rng):
        for s in _candidates(10, rng):
            bound = stepup_bound(model3, s)
            true = peak_temperature(model3, s).value
            assert true <= bound + 0.3  # the wrap-epsilon margin


class TestClassify:
    def test_cold_schedule_accepted(self, model3):
        s = phase_schedule([0.6] * 3, [0.8] * 3, 0.01, [0.0, 0.01, 0.02], 0.05)
        assert classify_schedule(model3, s, theta_max=30.0) is Screen.ACCEPT

    def test_hot_schedule_rejected(self, model3):
        s = phase_schedule([1.2] * 3, [1.3] * 3, 0.04, [0.0, 0.0, 0.0], 0.05)
        assert classify_schedule(model3, s, theta_max=10.0) is Screen.REJECT

    def test_borderline_needs_verification(self, model3):
        s = phase_schedule([0.6] * 3, [1.3] * 3, 0.025, [0.0, 0.02, 0.04], 0.05)
        bound = stepup_bound(model3, s)
        # Pick the threshold right at the bound: inconclusive by design.
        assert classify_schedule(model3, s, theta_max=bound) is Screen.VERIFY


class TestPrune:
    def test_decisions_match_ground_truth(self, model3, rng):
        candidates = _candidates(16, rng)
        theta_max = 25.0
        report = prune_candidates(model3, candidates, theta_max)
        # Every index classified exactly once.
        assert sorted(report.feasible + report.infeasible) == list(range(16))
        # Ground truth from the general engine.
        for k, s in enumerate(candidates):
            true = peak_temperature(model3, s).value
            if k in report.feasible:
                assert true <= theta_max + 0.05
            else:
                assert true > theta_max - 0.05

    def test_screening_saves_work(self, model3, rng):
        # With a generous threshold most candidates are bound-accepted.
        candidates = _candidates(16, rng)
        report = prune_candidates(model3, candidates, theta_max=60.0)
        assert report.general_engine_fraction < 0.5
        assert len(report.infeasible) == 0

    def test_empty_candidate_list(self, model3):
        report = prune_candidates(model3, [], theta_max=30.0)
        assert report.feasible == ()
        assert report.general_engine_fraction == 0.0
