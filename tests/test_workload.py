"""Tests for the real-time workload layer."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SolverError
from repro.platform import paper_platform
from repro.workload import (
    PeriodicTask,
    TaskSet,
    first_fit_decreasing,
    schedule_taskset,
    thermal_aware_mapping,
    worst_fit_decreasing,
)


class TestPeriodicTask:
    def test_utilization(self):
        t = PeriodicTask(name="a", wcec=0.02, period_s=0.1)
        assert t.utilization == pytest.approx(0.2)

    def test_demand_at_speed(self):
        t = PeriodicTask(name="a", wcec=0.05, period_s=0.1)
        assert t.demand_at_speed(1.0) == pytest.approx(0.5)
        assert t.demand_at_speed(0.5) == pytest.approx(1.0)
        with pytest.raises(ConfigurationError):
            t.demand_at_speed(0.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": "", "wcec": 1.0, "period_s": 1.0},
            {"name": "a", "wcec": 0.0, "period_s": 1.0},
            {"name": "a", "wcec": 1.0, "period_s": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            PeriodicTask(**kwargs)


class TestTaskSet:
    def test_total_utilization(self):
        ts = TaskSet(
            (
                PeriodicTask("a", 0.02, 0.1),
                PeriodicTask("b", 0.03, 0.1),
            )
        )
        assert ts.total_utilization == pytest.approx(0.5)
        assert len(ts) == 2

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            TaskSet((PeriodicTask("a", 1, 1), PeriodicTask("a", 2, 2)))

    def test_random_hits_total_utilization(self, rng):
        ts = TaskSet.random(12, total_utilization=4.0, rng=rng)
        assert ts.total_utilization == pytest.approx(4.0, rel=1e-9)
        assert len(ts) == 12

    def test_random_respects_task_cap(self, rng):
        for seed in range(20):
            ts = TaskSet.random(
                6, total_utilization=4.5, rng=np.random.default_rng(seed)
            )
            assert ts.utilizations().max() <= 1.0 + 1e-9

    def test_random_impossible_split_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            TaskSet.random(3, total_utilization=4.0, rng=rng)  # 3 tasks of <=1

    def test_sorted_by_utilization(self, rng):
        ts = TaskSet.random(8, total_utilization=3.0, rng=rng)
        utils = [t.utilization for t in ts.sorted_by_utilization()]
        assert utils == sorted(utils, reverse=True)


class TestMappings:
    @pytest.fixture(scope="class")
    def platform(self):
        return paper_platform(9, n_levels=5, t_max_c=60.0)

    @pytest.fixture(scope="class")
    def taskset(self):
        return TaskSet.random(
            18, total_utilization=6.0, rng=np.random.default_rng(11)
        )

    @pytest.mark.parametrize(
        "mapper", [first_fit_decreasing, worst_fit_decreasing, thermal_aware_mapping]
    )
    def test_every_task_placed_within_capacity(self, platform, taskset, mapper):
        m = mapper(taskset, platform)
        assert set(m.assignment) == {t.name for t in taskset}
        assert np.all(m.core_utilizations() <= platform.ladder.v_max + 1e-9)
        assert m.core_utilizations().sum() == pytest.approx(
            taskset.total_utilization
        )

    def test_wfd_balances_better_than_ffd(self, platform, taskset):
        ffd = first_fit_decreasing(taskset, platform)
        wfd = worst_fit_decreasing(taskset, platform)
        assert wfd.core_utilizations().max() <= ffd.core_utilizations().max() + 1e-9

    def test_thermal_aware_unloads_center(self, platform):
        # A load that fits comfortably: the center core (index 4 on 3x3)
        # must carry no more weighted load than the corners.
        ts = TaskSet.random(27, total_utilization=5.4,
                            rng=np.random.default_rng(3))
        m = thermal_aware_mapping(ts, platform)
        utils = m.core_utilizations()
        corners = [0, 2, 6, 8]
        assert utils[4] <= max(utils[c] for c in corners) + 1e-9

    def test_overload_raises(self, platform):
        ts = TaskSet.random(30, total_utilization=15.0,
                            rng=np.random.default_rng(1))
        with pytest.raises(SolverError):
            first_fit_decreasing(ts, platform)

    def test_core_tasks_partition(self, platform, taskset):
        m = worst_fit_decreasing(taskset, platform)
        names = []
        for core in range(platform.n_cores):
            names += [t.name for t in m.core_tasks(core)]
        assert sorted(names) == sorted(t.name for t in taskset)


class TestScheduleTaskset:
    def test_feasible_workload(self):
        p = paper_platform(9, n_levels=5, t_max_c=60.0)
        ts = TaskSet.random(20, total_utilization=7.0,
                            rng=np.random.default_rng(7))
        r = schedule_taskset(p, ts)
        assert r.thermally_feasible
        assert r.slack_theta > 0
        # Verify against the oracle: the schedule really is safe.
        from repro.thermal.reference import reference_peak

        oracle = reference_peak(p.model, r.minpeak.schedule,
                                samples_per_interval=32)
        assert oracle <= p.theta_max + 0.05

    def test_infeasible_workload_detected(self):
        p = paper_platform(3, n_levels=2, t_max_c=50.0)
        # Packs fine (~1.05 per core) but runs too hot for 50 C.
        ts = TaskSet.random(9, total_utilization=3.15,
                            rng=np.random.default_rng(2))
        r = schedule_taskset(p, ts, mapper=worst_fit_decreasing)
        assert not r.thermally_feasible
        assert r.slack_theta < 0

    def test_tiny_demands_rounded_to_vmin(self):
        p = paper_platform(3, n_levels=2, t_max_c=65.0)
        ts = TaskSet((PeriodicTask("tiny", 0.001, 0.1),))
        r = schedule_taskset(p, ts)
        speeds = r.minpeak.target_speeds
        busy = speeds[speeds > 0]
        assert np.all(busy >= p.ladder.v_min - 1e-12)

    def test_summary(self):
        p = paper_platform(3, n_levels=2, t_max_c=65.0)
        ts = TaskSet.random(5, total_utilization=1.5,
                            rng=np.random.default_rng(4))
        assert "workload" in schedule_taskset(p, ts).summary()
