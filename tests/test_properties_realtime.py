"""Property-based suite for the k-fault-tolerant frame scheduler.

The ISSUE's guarantees, checked over hypothesis-drawn workloads and
failure schedules rather than hand-picked cases:

1. **k-fault guarantee** — for *any* at-most-k injected core failures,
   an admitted margin placement executes with zero deadline misses in
   the closed loop, its true-physics peak stays within ``T_max``
   (certificate tolerance), and after permanent failures the degraded
   placement either re-certifies under the same ``T_max`` or sheds only
   the lowest-criticality promoted tasks — every shed journaled.
2. **Monotone schedulability in k** — a workload fully admitted with k
   backup copies is also fully admitted with fewer: raising the fault
   budget only consumes more margin, never frees it.
3. **Window monotonicity** — the shared backup window is non-decreasing
   in k on the same workload (more failure sets to cover).

Profiles: loads the ``ci`` profile by default (derandomized, few
examples); set ``HYPOTHESIS_PROFILE=dev`` for a wider search locally.
"""

from __future__ import annotations

import os

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import InfeasibleError
from repro.platform import paper_platform
from repro.realtime import FrameWorkload, plan_frames, simulate_recovery

settings.register_profile(
    "ci", max_examples=15, deadline=None, derandomize=True, print_blob=True
)
settings.register_profile("dev", max_examples=60, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))

#: The divergence-regime platform the experiment sweeps.
PLATFORM = paper_platform(3, n_levels=4, t_max_c=60.0)
N_CORES = 3
N_FRAMES = 8


@st.composite
def admissible_scenarios(draw, k=None):
    """A (workload, k, failure schedule) with at most ``k`` failures."""
    if k is None:
        k = draw(st.sampled_from([1, 2]))
    workload = FrameWorkload.random(
        draw(st.integers(4, 7)),
        draw(st.floats(0.5, 1.1)),
        0.02,
        rng=draw(st.integers(0, 2**31 - 1)),
        max_task_utilization=0.5,
    )
    n_failures = draw(st.integers(1, k))
    cores = draw(
        st.lists(
            st.integers(0, N_CORES - 1),
            min_size=n_failures, max_size=n_failures, unique=True,
        )
    )
    failures = []
    for core in cores:
        kind = draw(st.sampled_from(["permanent", "transient"]))
        failures.append(
            {
                "core": core,
                "at_fraction": draw(st.floats(0.0, 0.9)),
                "kind": kind,
                "duration_fraction": (
                    draw(st.floats(0.05, 0.4))
                    if kind == "transient" else 0.0
                ),
            }
        )
    return workload, k, failures


@given(admissible_scenarios())
def test_k_fault_guarantee(scenario):
    """Any <= k failures: zero misses, peak within T_max, sheds journaled."""
    workload, k, failures = scenario
    try:
        placement = plan_frames(PLATFORM, workload, k=k, policy="margin")
    except InfeasibleError:
        assume(False)  # nothing admitted — the guarantee is vacuous
    report = simulate_recovery(
        PLATFORM, placement, {"core_failures": failures},
        n_frames=N_FRAMES, steps_per_frame=8,
    )
    assert report.deadline_misses == 0
    assert report.peak_ok, (
        f"true peak {report.peak_theta:.3f} exceeded "
        f"{report.theta_max:.3f} + tolerance"
    )
    # The degraded placement re-certifies, or degradation shed only the
    # lowest-criticality promoted tasks — and journaled every one.
    if report.recertified is not None and not report.shed:
        assert report.recertified_ok
    if report.shed:
        crits = {t.name: t.criticality for t in workload.tasks}
        shed_crits = [crits[name] for name in report.shed]
        # Sheds happen lowest-criticality-first among promoted tasks.
        assert shed_crits == sorted(shed_crits)


@given(admissible_scenarios(k=2))
def test_schedulability_monotone_in_k(scenario):
    """Fully admitted at k=2 implies fully admitted at k=1."""
    workload, _, _ = scenario
    try:
        at_k2 = plan_frames(PLATFORM, workload, k=2, policy="margin")
    except InfeasibleError:
        assume(False)
    if at_k2.shed:
        assume(False)  # only the fully-admitted case implies anything
    at_k1 = plan_frames(PLATFORM, workload, k=1, policy="margin")
    assert not at_k1.shed


@given(admissible_scenarios(k=2))
def test_backup_window_monotone_in_k(scenario):
    """More backup copies to cover -> the shared window never shrinks."""
    workload, _, _ = scenario
    try:
        at_k2 = plan_frames(PLATFORM, workload, k=2, policy="margin")
        at_k1 = plan_frames(PLATFORM, workload, k=1, policy="margin")
    except InfeasibleError:
        assume(False)
    if at_k1.shed or at_k2.shed:
        assume(False)  # different admitted sets are incomparable
    assert at_k2.backup_window_s >= at_k1.backup_window_s - 1e-12


@given(
    st.integers(0, 2**31 - 1),
    st.floats(0.5, 1.0),
    st.integers(0, N_CORES - 1),
)
def test_blind_never_beats_margin_on_safety(seed, utilization, victim):
    """On this platform blind's activations run hotter — whenever both
    policies admit the same full workload, a margin run that is safe is
    never matched by a blind run that is *unsafely* hotter and safe."""
    workload = FrameWorkload.random(
        5, utilization, 0.02, rng=seed, max_task_utilization=0.5
    )
    failures = {"core_failures": [{"core": victim, "at_fraction": 0.4}]}
    try:
        margin = plan_frames(PLATFORM, workload, k=1, policy="margin")
        blind = plan_frames(PLATFORM, workload, k=1, policy="blind")
    except InfeasibleError:
        assume(False)
    if margin.shed or blind.shed:
        assume(False)
    r_margin = simulate_recovery(PLATFORM, margin, failures)
    r_blind = simulate_recovery(PLATFORM, blind, failures)
    assert r_margin.safe
    assert r_margin.peak_theta <= r_blind.peak_theta + 1e-9
