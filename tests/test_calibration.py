"""Tests for the anchor-based calibration machinery."""

import numpy as np
import pytest

from repro.power.model import PowerModel
from repro.thermal.calibration import (
    AnchorSet,
    anchor_residuals,
    calibrate,
    solve_level_anchors,
)
from repro.thermal.params import SingleLayerParams


class TestLevelAnchors:
    def test_closed_form_reproduces_ideal_voltages(self):
        power = PowerModel()
        g_direct, g_boundary = solve_level_anchors(power)
        # Verify through the forward model.
        from repro.floorplan.library import floorplan_3x1
        from repro.thermal.model import ThermalModel
        from repro.thermal.rc import build_single_layer_network

        params = SingleLayerParams(g_direct=g_direct, g_boundary=g_boundary)
        m = ThermalModel(build_single_layer_network(floorplan_3x1(), params), power)
        q = m.required_injection_for(np.full(3, 30.0))
        v = [power.psi_inverse(qi) for qi in q]
        assert v == pytest.approx([1.2085, 1.1748, 1.2085], abs=1e-9)

    def test_defaults_match_solved_anchors(self):
        g_direct, g_boundary = solve_level_anchors(PowerModel())
        defaults = SingleLayerParams()
        assert defaults.g_direct == pytest.approx(g_direct, abs=1e-5)
        assert defaults.g_boundary == pytest.approx(g_boundary, abs=1e-5)


class TestResiduals:
    def test_shipped_defaults_hit_hard_anchors(self):
        res = anchor_residuals(SingleLayerParams(), PowerModel())
        # Ideal voltages (weighted): essentially zero (defaults are the
        # fitted values rounded to six decimals).
        assert abs(res[0]) < 1e-3 and abs(res[1]) < 1e-3
        # EXS frontier: satisfied (small hinge values).
        assert res[2] < 0.5 and res[3] < 0.5
        # Table III operating point: on the constraint.
        assert abs(res[4]) < 0.05

    def test_residual_count_matches_weights(self):
        anchors = AnchorSet()
        res = anchor_residuals(SingleLayerParams(), PowerModel(), anchors)
        assert res.shape == (len(anchors.weights),)


class TestCalibrate:
    def test_roundtrip_from_perturbed_start(self):
        # Calibration must recover a good fit even from a poor start.
        result = calibrate(initial_lateral=0.5, initial_c_core=5e-3, max_nfev=80)
        assert abs(result.residuals[0]) < 1e-3  # ideal voltages exact by construction
        assert abs(result.residuals[4]) < 0.2   # Table III anchor fitted
        assert result.cost < 100.0

    def test_summary_contains_parameters(self):
        result = calibrate(max_nfev=30)
        text = result.summary()
        assert "g_direct" in text and "gamma" in text
