"""Tests for the AO (Algorithm 2) and PCO schedulers."""

import numpy as np
import pytest

from repro.algorithms import ao, exs, lns, pco
from repro.platform import paper_platform
from repro.schedule.properties import is_step_up
from repro.thermal.peak import peak_temperature


@pytest.fixture(scope="module")
def p3():
    return paper_platform(3, n_levels=2, t_max_c=65.0)


@pytest.fixture(scope="module")
def ao3(p3):
    return ao(p3)


class TestAO:
    def test_feasible(self, p3, ao3):
        assert ao3.feasible
        assert ao3.peak_theta <= p3.theta_max + 1e-6

    def test_exact_peak_verification(self, p3, ao3):
        exact = peak_temperature(p3.model, ao3.schedule, grid_per_interval=128)
        assert exact.value <= p3.theta_max + 5e-3

    def test_beats_exs_and_lns(self, p3, ao3):
        assert ao3.throughput > exs(p3).throughput
        assert ao3.throughput > lns(p3).throughput

    def test_below_continuous_ideal(self, p3, ao3):
        ideal = np.asarray(ao3.details["continuous_voltages"]).mean()
        assert ao3.throughput <= ideal + 1e-9

    def test_emits_stepup_schedule(self, ao3):
        assert is_step_up(ao3.schedule)

    def test_details_present(self, ao3):
        for key in ("m_opt", "m_history", "final_high_ratio", "v_low", "v_high"):
            assert key in ao3.details
        assert ao3.details["m_opt"] >= 1

    def test_m_respects_overhead_bound(self, p3, ao3):
        # The chosen cycle's low intervals must host the transitions.
        m = ao3.details["m_opt"]
        cycle = 0.02 / m
        ratios = np.asarray(ao3.details["final_high_ratio"])
        v_lo = np.asarray(ao3.details["v_low"])
        v_hi = np.asarray(ao3.details["v_high"])
        for i in range(3):
            if v_hi[i] > v_lo[i] and 0 < ratios[i] < 1:
                t_low = (1 - ratios[i]) * cycle
                assert t_low >= p3.overhead.tau

    def test_constant_plan_when_levels_hit(self):
        # With a generous threshold every core clamps to v_max: single mode.
        p = paper_platform(2, n_levels=2, t_max_c=120.0)
        r = ao(p)
        assert r.details["m_opt"] == 1
        assert np.allclose(r.schedule.voltage_matrix, 1.3)
        assert r.throughput == pytest.approx(1.3)

    def test_no_fill_variant_not_better(self, p3, ao3):
        r_nofill = ao(p3, fill=False)
        assert r_nofill.throughput <= ao3.throughput + 1e-9

    def test_m_step_speedup_preserves_feasibility(self, p3):
        r = ao(p3, m_step=8)
        assert r.feasible

    @pytest.mark.parametrize("n", [2, 6])
    def test_other_core_counts(self, n):
        p = paper_platform(n, n_levels=3, t_max_c=55.0)
        r = ao(p)
        assert r.feasible
        assert r.throughput >= lns(p).throughput - 1e-9


class TestPCO:
    @pytest.fixture(scope="class")
    def pco3(self, p3):
        return pco(p3, shift_grid=4)

    def test_feasible_under_general_engine(self, p3, pco3):
        assert pco3.feasible
        exact = peak_temperature(p3.model, pco3.schedule, grid_per_interval=128)
        assert exact.value <= p3.theta_max + 5e-3

    def test_close_to_ao(self, ao3, pco3):
        # The paper finds AO and PCO nearly equal once m-oscillation has
        # shrunk the cycle.
        assert pco3.throughput == pytest.approx(ao3.throughput, rel=0.05)

    def test_at_least_exs(self, p3, pco3):
        assert pco3.throughput > exs(p3).throughput

    def test_details_include_shifts(self, pco3):
        shifts = pco3.details["shifts"]
        assert len(shifts) == 3
        assert all(s >= 0 for s in shifts)

    def test_slower_than_ao(self, ao3, pco3):
        # Table V's qualitative claim on this codebase: PCO pays for the
        # general peak engine.
        assert pco3.runtime_s > ao3.runtime_s * 0.5
