"""Tests for the technology-scaling model and the dark-silicon experiment.

The tables are data, but their *shape* carries the physics story: vdd
and the DVFS window compress as nodes shrink while the leakage share
grows — that squeeze is what eventually forces dark silicon.  The
generator tests pin the construction invariants (nominal power
recovered exactly at vdd, ladder inside the DVFS bounds, positive
definite thermal model at every point including 3D stacks), and the
experiment tests pin seeded bitwise reproducibility plus the honest
feasibility semantics the frontier logic depends on.
"""

import math

import pytest

from repro.engine import ThermalEngine
from repro.errors import ConfigurationError
from repro.scaling.generator import tech_ladder, tech_platform, tech_summary
from repro.scaling.tables import (
    CORE_STYLES,
    LEAKAGE_SHARE,
    SCENARIOS,
    TECH_NODES,
    VTH_V,
    check_point,
    core_area_mm2,
    dvfs_bounds_v,
    frequency_ghz,
    nominal_power_w,
    vdd_v,
)


class TestTables:
    def test_nodes_shrink_in_order(self):
        assert tuple(TECH_NODES) == tuple(sorted(TECH_NODES, reverse=True))

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_vdd_monotone_nonincreasing(self, scenario):
        vdds = [vdd_v(n, scenario) for n in TECH_NODES]
        assert all(a >= b for a, b in zip(vdds, vdds[1:]))

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_dvfs_window_compresses(self, scenario):
        """The usable voltage range (1.3*vdd down to vth) is squeezed
        across the sweep — strictly monotonically under ITRS scaling;
        conservative scaling holds vdd flat at the smallest nodes while
        vth keeps dropping, so there only the end-to-end compression
        holds."""
        widths = []
        for node in TECH_NODES:
            lo, hi = dvfs_bounds_v(node, scenario)
            assert lo == pytest.approx(VTH_V[node])
            assert lo < hi
            widths.append(hi - lo)
        assert widths[-1] < widths[0]
        if scenario == "itrs":
            assert all(a >= b for a, b in zip(widths, widths[1:]))

    def test_leakage_share_grows(self):
        shares = [LEAKAGE_SHARE[n] for n in TECH_NODES]
        assert all(a < b for a, b in zip(shares, shares[1:]))
        assert all(0.0 < s < 1.0 for s in shares)

    def test_area_halves_per_node(self):
        for style in CORE_STYLES:
            areas = [core_area_mm2(n, style) for n in TECH_NODES]
            for a, b in zip(areas, areas[1:]):
                assert b == pytest.approx(a / 2.0)

    def test_itrs_faster_than_conservative_at_small_nodes(self):
        for style in CORE_STYLES:
            assert frequency_ghz(8, "itrs", style) > frequency_ghz(
                8, "cons", style
            )

    def test_check_point_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            check_point(14, "itrs", "io")
        with pytest.raises(ConfigurationError):
            check_point(45, "moore", "io")
        with pytest.raises(ConfigurationError):
            check_point(45, "itrs", "vliw")


class TestGenerator:
    @pytest.mark.parametrize("node", TECH_NODES)
    @pytest.mark.parametrize("style", CORE_STYLES)
    def test_every_point_builds_and_solves(self, node, style):
        platform = tech_platform(node=node, style=style, n_cores=2, n_levels=3)
        engine = ThermalEngine(platform)
        # One cheap constant assignment exercises the steady-state path
        # (positive definite solve) at every point.
        theta = engine.steady_state([platform.ladder.v_min] * 2)
        assert all(t >= 0.0 for t in theta)

    def test_psi_at_vdd_recovers_nominal_power(self):
        for node in TECH_NODES:
            for scenario in SCENARIOS:
                for style in CORE_STYLES:
                    platform = tech_platform(
                        node=node, scenario=scenario, style=style, n_cores=2
                    )
                    vdd = vdd_v(node, scenario)
                    assert platform.model.power.psi(vdd) == pytest.approx(
                        nominal_power_w(node, scenario, style)
                    )

    def test_ladder_spans_dvfs_bounds(self):
        for node in (45, 8):
            ladder = tech_ladder(node, "itrs", n_levels=5)
            lo, hi = dvfs_bounds_v(node, "itrs")
            assert ladder.v_min == pytest.approx(lo, abs=1e-6)
            assert ladder.v_max == pytest.approx(hi, abs=1e-6)
            assert len(ladder.levels) == 5
            assert list(ladder.levels) == sorted(ladder.levels)

    def test_3d_stack_builds_with_more_nodes(self):
        flat = tech_platform(node=16, n_cores=4, stack_layers=1)
        stacked = tech_platform(node=16, n_cores=4, stack_layers=2)
        assert stacked.n_cores == 2 * flat.n_cores

    def test_paper_counts_keep_paper_layouts(self):
        p9 = tech_platform(node=22, n_cores=9)
        assert p9.n_cores == 9

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigurationError):
            tech_platform(n_cores=0)
        with pytest.raises(ConfigurationError):
            tech_platform(stack_layers=0)
        with pytest.raises(ConfigurationError):
            tech_ladder(45, "itrs", n_levels=1)

    def test_summary_consistent_with_tables(self):
        s = tech_summary(16, "itrs", "io")
        assert s["vdd_v"] == pytest.approx(vdd_v(16, "itrs"))
        assert s["leakage_share"] == LEAKAGE_SHARE[16]
        assert s["v_lo"] < s["v_hi"]


class TestScalingExperiment:
    QUICK = dict(
        nodes=(45, 8),
        scenarios=("itrs",),
        styles=("io",),
        layer_counts=(1,),
        approaches=("AO",),
        utilization_floors=(0.0,),
        n_cores=2,
        n_levels=2,
        m_cap=8,
        seed=7,
    )

    def test_same_seed_bitwise_identical(self):
        from repro.experiments.scaling import scaling_experiment

        a = scaling_experiment(**self.QUICK).headline()
        b = scaling_experiment(**self.QUICK).headline()
        assert a == b

    def test_headline_shape_and_frontier_semantics(self):
        from repro.experiments.scaling import scaling_experiment

        result = scaling_experiment(**self.QUICK)
        head = result.headline()
        assert head["experiment"] == "scaling" and head["seed"] == 7
        assert len(head["rows"]) == 2
        for row in result.rows:
            # The frontier keys off guarded_solve's honest feasibility
            # flag: a fallback row with feasible=False must never count
            # as a live full-chip contender.
            for out in row.oscillation.values():
                if not out["feasible"]:
                    assert row.best_oscillation is None or (
                        row.best_oscillation[0]
                        not in [
                            k
                            for k, v in row.oscillation.items()
                            if not v["feasible"]
                        ]
                    )
        cross = head["crossover_node"]
        assert cross is None or cross in self.QUICK["nodes"]

    def test_format_renders(self):
        from repro.experiments.scaling import scaling_experiment

        text = scaling_experiment(**self.QUICK).format()
        assert "Technology scaling" in text and "regime" in text

    def test_max_dark_respects_utilization_floor(self):
        from repro.experiments.scaling import _max_dark

        assert _max_dark(9, 0.0) == 8
        assert _max_dark(9, 0.5) == 4
        assert _max_dark(9, 1.0) == 0
        assert _max_dark(18, 0.5) == 9
        assert _max_dark(1, 0.0) == 0

    def test_units_carry_spec_documents_and_seeds(self):
        from repro.experiments.scaling import scaling_units

        units = scaling_units(
            [(45, "itrs", "io", 1)], [123], 2, 2, 55.0,
            ("AO",), (0.0,), {"m_cap": 8},
        )
        assert len(units) == 2
        for unit in units:
            assert unit.payload["platform"]["family"] == "tech"
            assert unit.payload["seed"] == 123
        assert units[1].payload["params"]["max_dark"] == 1

    def test_registered_with_runner_support(self):
        from repro.experiments.registry import EXPERIMENTS

        spec = EXPERIMENTS["scaling"]
        assert spec.accepts_runner
        assert spec.quick["nodes"] == (45, 16)
        assert set(spec.quick["styles"]) == {"io", "o3"}
